//! Mutable undirected simple graph over dense node ids.

use std::collections::BTreeSet;
use std::fmt;

use crate::{GraphError, NodeId};

/// An undirected edge, stored with its endpoints in ascending order.
///
/// `Edge::new(a, b)` normalizes the endpoint order so that edges compare and
/// hash consistently regardless of insertion direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a normalized edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; the substrate models simple graphs.
    #[must_use]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loop edges are not representable");
        if a < b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is not
    /// an endpoint of this edge.
    #[must_use]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// Mutable undirected simple graph.
///
/// Nodes are dense indices `0..node_count()`. Adjacency is stored as one
/// sorted set per node, so neighbor iteration is deterministic (ascending by
/// id) — a property the LHG constructions and the flooding simulator rely on
/// for reproducible runs.
///
/// # Example
///
/// ```
/// use lhg_graph::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b);
/// assert!(g.has_edge(a, b));
/// assert_eq!(g.degree(a), 1);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<BTreeSet<NodeId>>,
    edge_count: usize,
}

#[cfg(feature = "serde")]
serde::impl_serde_struct!(Edge {
    a: NodeId,
    b: NodeId
});

#[cfg(feature = "serde")]
serde::impl_serde_struct!(Graph {
    adjacency: Vec<BTreeSet<NodeId>>,
    edge_count: usize
});

impl Graph {
    /// Creates an empty graph with no nodes.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes `0..n`.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge iterator; the node count is
    /// `max endpoint + 1` (or `min_nodes`, whichever is larger).
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any edge is a self-loop.
    #[must_use]
    pub fn from_edges<I>(min_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::with_nodes(min_nodes);
        for (a, b) in edges {
            let needed = a.index().max(b.index()) + 1;
            while g.node_count() < needed {
                g.add_node();
            }
            g.add_edge(a, b);
        }
        g
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adjacency.len());
        self.adjacency.push(BTreeSet::new());
        id
    }

    /// Adds `count` new isolated nodes, returning their ids in order.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns `true` if `node` is a valid id for this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Adds the undirected edge `(a, b)`. Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds or if `a == b`. Use
    /// [`Graph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.try_add_edge(a, b).expect("invalid edge")
    }

    /// Adds the undirected edge `(a, b)`. Returns `Ok(true)` if the edge was
    /// new, `Ok(false)` if it already existed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist, and [`GraphError::SelfLoop`] if `a == b`.
    pub fn try_add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        let inserted = self.adjacency[a.index()].insert(b);
        if inserted {
            self.adjacency[b.index()].insert(a);
            self.edge_count += 1;
        }
        Ok(inserted)
    }

    /// Removes the edge `(a, b)` if present; returns whether it existed.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.check_node(a).expect("invalid endpoint");
        self.check_node(b).expect("invalid endpoint");
        let removed = self.adjacency[a.index()].remove(&b);
        if removed {
            self.adjacency[b.index()].remove(&a);
            self.edge_count -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `(a, b)` exists.
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.contains_node(a) && self.contains_node(b) && self.adjacency[a.index()].contains(&b)
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.check_node(node).expect("invalid node");
        self.adjacency[node.index()].len()
    }

    /// Iterator over all node ids in ascending order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.adjacency.len()).map(NodeId)
    }

    /// Iterator over the neighbors of `node` in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        self.check_node(node).expect("invalid node");
        self.adjacency[node.index()].iter().copied()
    }

    /// Iterator over all edges, each reported once with `a < b`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, set)| {
            let a = NodeId(i);
            set.iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| Edge { a, b })
        })
    }

    /// Sum of all degrees; by the handshake lemma this equals `2 * edge_count`.
    #[must_use]
    pub fn degree_sum(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum()
    }

    /// A stable 64-bit fingerprint of the labelled graph (node count plus
    /// sorted edge list). Two graphs compare equal iff they have the same
    /// fingerprint-input; this is *not* an isomorphism hash.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the canonical byte stream: deterministic across runs
        // and platforms, unlike `DefaultHasher`.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.node_count() as u64);
        for e in self.edges() {
            eat(e.a.index() as u64);
            eat(e.b.index() as u64);
        }
        h
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph with {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for e in self.edges() {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

impl Extend<(NodeId, NodeId)> for Graph {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (a, b) in iter {
            let needed = a.index().max(b.index()) + 1;
            while self.node_count() < needed {
                self.add_node();
            }
            self.add_edge(a, b);
        }
    }
}

impl FromIterator<(NodeId, NodeId)> for Graph {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(0, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))])
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_node_assigns_dense_ids() {
        let mut g = Graph::new();
        assert_eq!(g.add_node(), NodeId(0));
        assert_eq!(g.add_node(), NodeId(1));
        assert_eq!(g.add_nodes(3), vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn add_edge_is_undirected_and_idempotent() {
        let mut g = Graph::with_nodes(2);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn try_add_edge_rejects_self_loop() {
        let mut g = Graph::with_nodes(1);
        assert_eq!(
            g.try_add_edge(NodeId(0), NodeId(0)),
            Err(GraphError::SelfLoop { node: NodeId(0) })
        );
    }

    #[test]
    fn try_add_edge_rejects_out_of_bounds() {
        let mut g = Graph::with_nodes(1);
        assert!(matches!(
            g.try_add_edge(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn add_edge_panics_on_out_of_bounds() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(3));
    }

    #[test]
    fn remove_edge_round_trips() {
        let mut g = path3();
        assert!(g.remove_edge(NodeId(1), NodeId(0)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(1));
        let ns: Vec<_> = g.neighbors(NodeId(2)).collect();
        assert_eq!(ns, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn edges_reported_once_in_order() {
        let g = Graph::from_edges(
            0,
            [
                (NodeId(1), NodeId(0)),
                (NodeId(2), NodeId(1)),
                (NodeId(0), NodeId(2)),
            ],
        );
        let es: Vec<_> = g.edges().collect();
        assert_eq!(
            es,
            vec![
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(0), NodeId(2)),
                Edge::new(NodeId(1), NodeId(2)),
            ]
        );
    }

    #[test]
    fn handshake_lemma_holds() {
        let g = path3();
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn from_edges_grows_to_fit() {
        let g = Graph::from_edges(2, [(NodeId(0), NodeId(5))]);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(NodeId(5), NodeId(2));
        assert_eq!(e.a, NodeId(2));
        assert_eq!(e.b, NodeId(5));
        assert_eq!(e.other(NodeId(2)), Some(NodeId(5)));
        assert_eq!(e.other(NodeId(5)), Some(NodeId(2)));
        assert_eq!(e.other(NodeId(9)), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_is_stable() {
        let g1 = path3();
        let g2 = path3();
        assert_eq!(g1.fingerprint(), g2.fingerprint());

        let mut g3 = path3();
        g3.add_edge(NodeId(0), NodeId(2));
        assert_ne!(g1.fingerprint(), g3.fingerprint());
    }

    #[test]
    fn collect_from_iterator() {
        let g: Graph = [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]
            .into_iter()
            .collect();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn display_lists_edges() {
        let g = path3();
        let s = g.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("(n0, n1)"));
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
