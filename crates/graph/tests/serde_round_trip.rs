//! Serde round-trip tests for the data structures (C-SERDE).
//!
//! `serde_json` is a dev-dependency only: exercising `Serialize` /
//! `Deserialize` impls requires a concrete format, and JSON keeps the
//! fixtures human-readable.

use lhg_graph::{CsrGraph, Edge, Graph, NodeId};

fn sample() -> Graph {
    Graph::from_edges(
        5,
        [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(2)),
            (NodeId(2), NodeId(3)),
        ],
    )
}

#[test]
fn node_id_is_transparent() {
    let json = serde_json::to_string(&NodeId(7)).unwrap();
    assert_eq!(json, "7");
    let back: NodeId = serde_json::from_str(&json).unwrap();
    assert_eq!(back, NodeId(7));
}

#[test]
fn edge_round_trips() {
    let e = Edge::new(NodeId(3), NodeId(1));
    let json = serde_json::to_string(&e).unwrap();
    let back: Edge = serde_json::from_str(&json).unwrap();
    assert_eq!(back, e);
}

#[test]
fn graph_round_trips_with_isolated_nodes() {
    let g = sample();
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(back, g);
    assert_eq!(back.node_count(), 5, "isolated node 4 preserved");
    assert_eq!(back.fingerprint(), g.fingerprint());
}

#[test]
fn csr_round_trips() {
    let csr = CsrGraph::from_graph(&sample());
    let json = serde_json::to_string(&csr).unwrap();
    let back: CsrGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back, csr);
    assert_eq!(back.to_graph(), sample());
}

#[test]
fn empty_graph_round_trips() {
    let g = Graph::new();
    let back: Graph = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
    assert_eq!(back, g);
}
