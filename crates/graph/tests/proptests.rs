//! Property-based tests for the graph substrate.
//!
//! The most valuable invariant here is Whitney's inequality
//! `κ(G) ≤ λ(G) ≤ δ(G)`, which ties the two flow-based connectivity
//! computations and the degree statistics together: a bug in any of the
//! three tends to break the chain on random graphs.

use proptest::prelude::*;

use lhg_graph::components::is_connected;
use lhg_graph::connectivity::{
    edge_connectivity, is_k_edge_connected, is_k_vertex_connected, min_edge_cut, min_vertex_cut,
    vertex_connectivity,
};
use lhg_graph::degree::degree_stats;
use lhg_graph::io::{from_edge_list, to_edge_list};
use lhg_graph::subgraph::SubgraphView;
use lhg_graph::traversal::bfs_distances;
use lhg_graph::{CsrGraph, Graph, NodeId};

/// Strategy: a graph with 1..=max_n nodes and arbitrary simple edges.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(|n| {
        let max_edges = n * n.saturating_sub(1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(3 * n)).prop_map(move |pairs| {
            let mut g = Graph::with_nodes(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_lemma(g in arb_graph(30)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn csr_round_trip(g in arb_graph(30)) {
        let csr = CsrGraph::from_graph(&g);
        prop_assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn edge_list_round_trip(g in arb_graph(30)) {
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn bfs_distance_is_symmetric(g in arb_graph(20)) {
        let n = g.node_count();
        for s in 0..n {
            let ds = bfs_distances(&g, NodeId(s));
            for (t, &dst) in ds.iter().enumerate().take(n) {
                let dt = bfs_distances(&g, NodeId(t));
                prop_assert_eq!(dst, dt[s], "d({},{}) != d({},{})", s, t, t, s);
            }
        }
    }

    #[test]
    fn whitney_inequality(g in arb_graph(16)) {
        let kappa = vertex_connectivity(&g);
        let lambda = edge_connectivity(&g);
        let delta = degree_stats(&g).min;
        if g.node_count() >= 2 {
            prop_assert!(kappa <= lambda, "kappa={kappa} > lambda={lambda}");
            prop_assert!(lambda <= delta, "lambda={lambda} > delta={delta}");
        }
    }

    #[test]
    fn is_k_connected_agrees_with_exact_value(g in arb_graph(14)) {
        let kappa = vertex_connectivity(&g);
        let lambda = edge_connectivity(&g);
        for k in 0..=(kappa + 2) {
            prop_assert_eq!(is_k_vertex_connected(&g, k), k <= kappa, "k={}", k);
        }
        for k in 0..=(lambda + 2) {
            prop_assert_eq!(is_k_edge_connected(&g, k), k <= lambda, "k={}", k);
        }
    }

    #[test]
    fn min_vertex_cut_disconnects_and_matches_kappa(g in arb_graph(14)) {
        if let Some(cut) = min_vertex_cut(&g) {
            if is_connected(&g) {
                prop_assert_eq!(cut.len(), vertex_connectivity(&g));
                let view = SubgraphView::without_nodes(&g, cut.iter().copied());
                prop_assert!(!view.is_live_connected());
            }
        }
    }

    #[test]
    fn min_edge_cut_disconnects_and_matches_lambda(g in arb_graph(14)) {
        if let Some(cut) = min_edge_cut(&g) {
            if is_connected(&g) && g.node_count() >= 2 {
                prop_assert_eq!(cut.len(), edge_connectivity(&g));
                let view = SubgraphView::without_edges(&g, cut.iter().copied());
                prop_assert!(!view.is_live_connected());
            }
        }
    }

    #[test]
    fn removing_fewer_than_lambda_edges_keeps_connectivity(g in arb_graph(12)) {
        let lambda = edge_connectivity(&g);
        if lambda >= 2 {
            // Remove any single edge: still connected.
            for e in g.edges() {
                let view = SubgraphView::without_edges(&g, [e]);
                prop_assert!(view.is_live_connected());
            }
        }
    }

    #[test]
    fn subgraph_view_matches_rebuilt_graph(g in arb_graph(16)) {
        if g.node_count() >= 2 {
            // Remove the highest-id node both ways and compare connectivity
            // verdicts over live nodes.
            let victim = NodeId(g.node_count() - 1);
            let view = SubgraphView::without_nodes(&g, [victim]);

            let mut rebuilt = Graph::with_nodes(g.node_count() - 1);
            for e in g.edges() {
                if e.a != victim && e.b != victim {
                    rebuilt.add_edge(e.a, e.b);
                }
            }
            prop_assert_eq!(view.is_live_connected(), is_connected(&rebuilt));
        }
    }

    #[test]
    fn fingerprint_is_edge_insertion_order_independent(g in arb_graph(16)) {
        let mut edges: Vec<_> = g.edges().map(|e| (e.a, e.b)).collect();
        edges.reverse();
        let g2 = Graph::from_edges(g.node_count(), edges);
        prop_assert_eq!(g.fingerprint(), g2.fingerprint());
    }
}
