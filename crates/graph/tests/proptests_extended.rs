//! Property tests for the extended graph modules: disjoint paths,
//! betweenness, metrics and spectral estimates.

use proptest::prelude::*;

use lhg_graph::betweenness::betweenness;
use lhg_graph::connectivity::local_edge_connectivity;
use lhg_graph::degree::degree_stats;
use lhg_graph::disjoint_paths::{edge_disjoint_paths, verify_disjoint, vertex_disjoint_paths};
use lhg_graph::isomorphism::are_isomorphic;
use lhg_graph::metrics::{bipartition, girth, is_bipartite, local_clustering, triangle_count};
use lhg_graph::spectral::slem_estimate;
use lhg_graph::{Graph, NodeId};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..=3 * n).prop_map(move |pairs| {
            let mut g = Graph::with_nodes(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_disjoint_path_count_matches_flow(g in arb_graph(14)) {
        let s = NodeId(0);
        let t = NodeId(g.node_count() - 1);
        if s != t {
            let paths = edge_disjoint_paths(&g, s, t);
            prop_assert_eq!(paths.len(), local_edge_connectivity(&g, s, t, None));
            prop_assert!(verify_disjoint(&g, s, t, &paths, false));
        }
    }

    #[test]
    fn vertex_disjoint_paths_verify_and_bound_edge_disjoint(g in arb_graph(14)) {
        let s = NodeId(0);
        let t = NodeId(g.node_count() - 1);
        if s != t {
            let vps = vertex_disjoint_paths(&g, s, t);
            prop_assert!(verify_disjoint(&g, s, t, &vps, true));
            let eps = edge_disjoint_paths(&g, s, t);
            prop_assert!(vps.len() <= eps.len(), "κ-paths {} > λ-paths {}", vps.len(), eps.len());
        }
    }

    #[test]
    fn triangle_count_matches_clustering_identity(g in arb_graph(16)) {
        // Σ_v clustering(v)·C(deg v, 2) counts each triangle three times.
        let weighted: f64 = g
            .nodes()
            .map(|v| {
                let d = g.degree(v) as f64;
                local_clustering(&g, v) * d * (d - 1.0) / 2.0
            })
            .sum();
        let triangles = triangle_count(&g) as f64;
        prop_assert!((weighted - 3.0 * triangles).abs() < 1e-6,
            "{weighted} vs 3·{triangles}");
    }

    #[test]
    fn bipartition_is_a_proper_coloring(g in arb_graph(18)) {
        match bipartition(&g) {
            Some(coloring) => {
                for e in g.edges() {
                    prop_assert_ne!(coloring[e.a.index()], coloring[e.b.index()]);
                }
                // Bipartite graphs have no odd girth.
                if let Some(gi) = girth(&g) {
                    prop_assert_eq!(gi % 2, 0, "bipartite graph with odd girth {}", gi);
                }
            }
            None => {
                // Non-bipartite: an odd cycle exists, so girth is odd or an
                // odd cycle longer than the girth exists; at minimum the
                // graph has a cycle.
                prop_assert!(girth(&g).is_some());
            }
        }
    }

    #[test]
    fn triangle_free_iff_girth_above_3(g in arb_graph(16)) {
        let t = triangle_count(&g);
        match girth(&g) {
            Some(3) => prop_assert!(t > 0),
            _ => prop_assert_eq!(t, 0),
        }
    }

    #[test]
    fn bipartite_graphs_are_triangle_free(g in arb_graph(16)) {
        if is_bipartite(&g) {
            prop_assert_eq!(triangle_count(&g), 0);
        }
    }

    #[test]
    fn betweenness_is_nonnegative_and_zero_on_leaves(g in arb_graph(16)) {
        let c = betweenness(&g);
        for (v, &x) in c.iter().enumerate() {
            prop_assert!(x >= -1e-9, "node {v}: {x}");
            if g.degree(NodeId(v)) <= 1 {
                prop_assert!(x.abs() < 1e-9, "leaf {v} with betweenness {x}");
            }
        }
    }

    #[test]
    fn betweenness_total_counts_internal_pair_hops(g in arb_graph(12)) {
        // Σ betweenness = Σ over connected pairs of (d(s,t) − 1): each pair
        // contributes one unit per interior node of its shortest paths
        // (weighted fractionally).
        use lhg_graph::traversal::bfs_distances;
        let total: f64 = betweenness(&g).iter().sum();
        let mut expect = 0.0;
        let n = g.node_count();
        for s in 0..n {
            let dist = bfs_distances(&g, NodeId(s));
            for d in dist.iter().skip(s + 1).flatten() {
                expect += f64::from(d.saturating_sub(1));
            }
        }
        prop_assert!((total - expect).abs() < 1e-6, "{total} vs {expect}");
    }

    #[test]
    fn slem_is_within_unit_interval(g in arb_graph(16)) {
        let est = slem_estimate(&g, 100);
        prop_assert!((0.0..=1.0).contains(&est.slem), "{}", est.slem);
        prop_assert!((est.gap - (1.0 - est.slem)).abs() < 1e-12);
    }

    #[test]
    fn multi_component_graphs_have_slem_one(g in arb_graph(14)) {
        // Isolated vertices carry no stationary weight, so the walk only
        // sees components with edges; require at least two of those.
        let comps = lhg_graph::components::connected_components(&g);
        let mut with_edges = std::collections::HashSet::new();
        for e in g.edges() {
            with_edges.insert(comps.label(e.a));
        }
        if with_edges.len() >= 2 {
            let est = slem_estimate(&g, 400);
            prop_assert!(est.slem > 0.95, "multi-component slem {}", est.slem);
        }
    }

    #[test]
    fn isomorphism_respects_relabeling(g in arb_graph(10), seed in 0u64..1000) {
        // Build a permutation from the seed.
        let n = g.node_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut h = Graph::with_nodes(n);
        for e in g.edges() {
            h.add_edge(NodeId(perm[e.a.index()]), NodeId(perm[e.b.index()]));
        }
        prop_assert!(are_isomorphic(&g, &h));
        // Degree stats are isomorphism-invariant.
        prop_assert_eq!(degree_stats(&g), degree_stats(&h));
    }
}
