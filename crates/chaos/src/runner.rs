//! Executes fault plans on the simulator and on the TCP runtime.
//!
//! One [`FaultPlan`] drives both engines. The simulator run is fully
//! deterministic (virtual time, seeded jitter, seeded fault decisions); the
//! TCP run is wall-clock and therefore only *statistically* reproducible,
//! but every probabilistic decision inside it — fault verdicts, dial
//! jitter — still derives from the plan seed, so a failing seed reliably
//! re-exercises the same schedule shape.
//!
//! The TCP engine applies the plan's **default** link rates only: a
//! per-link total blackhole (the sim-only `link_overrides` refinement)
//! would starve heartbeats on one directed link forever and wedge the
//! cluster in perpetual suspicion churn, which is not the property under
//! test. Partitions and crashes are orchestrated in wall-clock time
//! (kill/rejoin calls, shared-injector partition toggles) rather than
//! precompiled, because the injector epoch starts before the cluster
//! finishes launching.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use lhg_byzantine::{
    run_sim_byzantine_churn, ByzCrash, ScheduledByzBroadcast, TraitorBehavior,
    EQUIVOCATE_NONCE_BASE,
};
use lhg_core::overlay::{DynamicOverlay, MemberId};
use lhg_core::properties::p4_diameter_bound;
use lhg_graph::connectivity::is_k_vertex_connected;
use lhg_graph::NodeId;
use lhg_net::fault::{FaultInjector, Partition};
use lhg_net::metrics::MetricsRegistry;
use lhg_net::reliable::{ReliableConfig, ReliableFlooder, ScheduledBroadcast};
use lhg_net::sim::{LinkModel, Process, SimReport, Simulation};
use lhg_runtime::{Cluster, RuntimeConfig};
use lhg_telemetry::{TelemetrySampler, Timeline};
use parking_lot::Mutex;

use crate::oracle::{ChaosReport, Engine, Violation};
use crate::plan::{BroadcastSpec, Family, FaultPlan, PlanOverrides};

pub use crate::plan::CHAOS_BCAST_BASE;

/// At most this many violations of each kind are reported per run; a
/// systemic failure produces thousands of identical entries otherwise.
const MAX_VIOLATIONS_PER_CHECK: usize = 8;

/// Virtual-time sampling cadence of the sim telemetry timeline.
const SIM_TELEMETRY_CADENCE_US: u64 = 100_000;

/// Wall-clock sampling cadence of the TCP telemetry timeline.
const TCP_TELEMETRY_CADENCE: Duration = Duration::from_millis(100);

/// Renders the per-run telemetry summary embedded in `lhg chaos --json`
/// records: timeline shape plus the per-class wire-cost decomposition
/// from the registry's accountant.
fn telemetry_json(timeline: &Timeline, metrics: &MetricsRegistry) -> String {
    let obj = serde::Value::Obj(vec![
        (
            "samples".to_owned(),
            serde::Value::U64(timeline.samples().len() as u64),
        ),
        ("span_us".to_owned(), serde::Value::U64(timeline.span_us())),
        ("wire".to_owned(), metrics.wire().to_value()),
    ]);
    serde_json::to_string(&obj).expect("Value serialization is infallible")
}

/// The process chaos runs host on every sim node: flooding over reliable
/// links with periodic anti-entropy ([`ReliableFlooder`]) — the same
/// protocol stack the TCP runtime speaks, so both engines are held to the
/// same strict delivery oracle on every family, lossy included.
fn flooders(n: usize, broadcasts: &[BroadcastSpec], horizon_us: u64) -> Vec<Box<dyn Process>> {
    let schedule: Vec<ScheduledBroadcast> = broadcasts
        .iter()
        .enumerate()
        .map(|(idx, b)| ScheduledBroadcast {
            id: CHAOS_BCAST_BASE + idx as u64,
            origin: b.origin,
            at_us: b.at_us,
        })
        .collect();
    (0..n)
        .map(|_| {
            Box::new(ReliableFlooder::new(
                ReliableConfig::default(),
                schedule.clone(),
                horizon_us,
            )) as Box<dyn Process>
        })
        .collect()
}

/// Runs `plan` on the discrete-event simulator and checks the oracle.
///
/// The run is bit-for-bit deterministic in the plan seed. A preliminary
/// *calibration* pass (clean links, zero jitter) checks the P4 hop bound —
/// with equal link latencies, first-receipt hop counts equal BFS distance,
/// so they must stay within the paper's logarithmic diameter bound.
///
/// # Panics
///
/// Panics if the plan's `(n, k, constraint)` is outside the overlay
/// builder's domain — [`FaultPlan::random`] never generates such plans.
#[must_use]
pub fn run_sim_chaos(plan: &FaultPlan) -> ChaosReport {
    if matches!(plan.family, Family::Byzantine | Family::Mixed) {
        return run_sim_byz_chaos(plan);
    }
    let overlay = DynamicOverlay::bootstrap(plan.constraint, plan.n, plan.k)
        .expect("generated plans stay in the builder domain");
    let graph = overlay.graph().clone();
    let mut violations = Vec::new();

    // Calibration: hop counts of a clean zero-jitter flood are BFS
    // distances and must respect the logarithmic diameter bound.
    let bound = p4_diameter_bound(plan.n, plan.k).ceil() as u32;
    let calibration = {
        let mut sim = Simulation::new(
            &graph,
            LinkModel {
                base_latency_us: 1_000,
                jitter_us: 0,
            },
            plan.seed,
        );
        sim.run(
            flooders(
                plan.n,
                &[BroadcastSpec {
                    origin: 0,
                    at_us: 0,
                }],
                1_000_000,
            ),
            1_000_000,
        )
    };
    for d in &calibration.deliveries {
        if d.hops > bound && violations.len() < MAX_VIOLATIONS_PER_CHECK {
            violations.push(Violation::HopBoundExceeded {
                broadcast_id: d.broadcast_id,
                node: d.node.index() as u32,
                hops: d.hops,
                bound,
            });
        }
    }

    // The chaos run proper, metered: the registry's wire accountant
    // decomposes the run's traffic by message class, and the virtual-time
    // sampler turns it into the timeline embedded in the JSON record.
    let metrics = Arc::new(MetricsRegistry::new());
    let sampler = Arc::new(Mutex::new(TelemetrySampler::new(
        "sim",
        Arc::clone(&metrics),
    )));
    let mut sim = Simulation::new(&graph, LinkModel::default(), plan.seed);
    sim.with_metrics(Arc::clone(&metrics));
    sim.with_faults(Arc::new(plan.compile()));
    lhg_telemetry::attach_to_sim(&mut sim, &sampler, SIM_TELEMETRY_CADENCE_US);
    let report = sim.run(
        flooders(plan.n, &plan.broadcasts, plan.horizon_us),
        plan.horizon_us,
    );
    let timeline = lhg_telemetry::merge(vec![sampler.lock().take_samples()]);
    let telemetry = Some(telemetry_json(&timeline, &metrics));
    check_sim_report(plan, &report, &mut violations);

    // Structural P1 check for the crash family: the membership that
    // survives every scheduled crash must still form a k-connected overlay.
    if plan.family == Family::Crash {
        let victims: Vec<MemberId> = plan.crashes.iter().map(|c| c.node as MemberId).collect();
        let mut survivors = overlay;
        if survivors.crash_many(&victims).is_err()
            || !is_k_vertex_connected(survivors.graph(), plan.k)
        {
            violations.push(Violation::NotKConnected {
                crashed: victims.len(),
            });
        }
    }

    ChaosReport {
        seed: plan.seed,
        engine: Engine::Sim,
        family: plan.family,
        n: plan.n,
        k: plan.k,
        violations,
        end_time_us: report.end_time,
        deliveries: report.deliveries.len(),
        events_jsonl: None,
        telemetry,
    }
}

/// Payload of the idx-th scheduled byzantine broadcast — shared by both
/// engines so the oracle can recompute the certified digest.
fn byz_payload(idx: usize) -> Bytes {
    Bytes::from(format!("chaos byz {idx}"))
}

/// Byzantine and mixed families on the simulator: every node runs the
/// Bracha echo/ready engine over LHG gossip
/// ([`lhg_byzantine::run_sim_byzantine_churn`]), the plan's traitors
/// misbehave on schedule, and the oracle demands agreement, validity and
/// integrity at every correct node. Mixed plans additionally kill their
/// scheduled victim mid-run (survivors bump their membership views and
/// re-size quorums) and put the plan's lossy link rates under the gossip
/// plane — regossip anti-entropy must repair the dropped votes. A view
/// refused for dipping below 3f+1 surfaces as [`Violation::QuorumUnsafe`].
/// The P4 calibration pass is skipped — a Bracha delivery is a quorum
/// event, not a single flood hop, so first-receipt hop counts do not
/// measure BFS distance.
fn run_sim_byz_chaos(plan: &FaultPlan) -> ChaosReport {
    let overlay = DynamicOverlay::bootstrap(plan.constraint, plan.n, plan.k)
        .expect("generated plans stay in the builder domain");
    let graph = overlay.graph().clone();
    let mut violations = Vec::new();

    let mut schedules: BTreeMap<usize, Vec<ScheduledByzBroadcast>> = BTreeMap::new();
    for (idx, b) in plan.broadcasts.iter().enumerate() {
        schedules
            .entry(b.origin as usize)
            .or_default()
            .push(ScheduledByzBroadcast {
                nonce: CHAOS_BCAST_BASE + idx as u64,
                payload: byz_payload(idx),
                at_us: b.at_us,
            });
    }
    let schedules: Vec<(NodeId, Vec<ScheduledByzBroadcast>)> =
        schedules.into_iter().map(|(v, s)| (NodeId(v), s)).collect();
    let traitors: Vec<(NodeId, TraitorBehavior)> = plan
        .traitors
        .iter()
        .map(|t| (NodeId(t.node as usize), t.behavior))
        .collect();

    let crashes: Vec<ByzCrash> = plan
        .crashes
        .iter()
        .map(|c| ByzCrash {
            at_us: c.at_us,
            node: NodeId(c.node as usize),
            revive_at_us: c.recover_at_us,
        })
        .collect();
    // Mixed plans carry lossy rates; rates-only compilation leaves the
    // crash semantics to the churn runner's death schedule above.
    let faults = (!plan.is_lossless()).then(|| Arc::new(plan.compile_rates_only()));

    // The byzantine sim builds its own Simulation internally, so there is
    // no sampler hook; one post-run sample still yields the full per-class
    // wire decomposition (echo/ready quorum traffic vs everything else).
    let metrics = Arc::new(MetricsRegistry::new());
    let report = run_sim_byzantine_churn(
        &graph,
        plan.k,
        &schedules,
        &traitors,
        &crashes,
        faults,
        LinkModel::default(),
        plan.seed,
        plan.horizon_us,
        Some(Arc::clone(&metrics)),
    );
    let timeline = {
        let mut sampler = TelemetrySampler::new("sim", Arc::clone(&metrics));
        sampler.sample(report.end_time);
        lhg_telemetry::merge(vec![sampler.take_samples()])
    };
    let telemetry = Some(telemetry_json(&timeline, &metrics));
    if report.end_time > plan.horizon_us {
        violations.push(Violation::Timeout {
            phase: "virtual-time horizon".into(),
        });
    }
    let records: Vec<(u32, u64, Option<u64>)> = report
        .deliveries
        .iter()
        .map(|d| (d.node.index() as u32, d.broadcast_id, d.trace))
        .collect();
    check_byz_deliveries(plan, &records, &mut violations);
    check_rejoin_divergence(plan, &records, &mut violations);
    let unsafe_views = metrics.counter("byz.unsafe_views").get();
    if unsafe_views > 0 {
        violations.push(Violation::QuorumUnsafe {
            count: unsafe_views,
        });
    }

    ChaosReport {
        seed: plan.seed,
        engine: Engine::Sim,
        family: plan.family,
        n: plan.n,
        k: plan.k,
        violations,
        end_time_us: report.end_time,
        deliveries: report.deliveries.len(),
        events_jsonl: None,
        telemetry,
    }
}

/// The Byzantine oracle, shared by both engines. `records` is every byz
/// delivery observed: `(node, instance nonce, certified digest)`.
///
/// * **Validity** — every scheduled instance (a correct origin's
///   broadcast) is delivered by every correct node, with the digest of
///   the payload that origin actually sent (else integrity is charged).
/// * **Agreement** — for any instance, all correct deliverers certify one
///   digest. Equivocation instances (the traitor's two-faced SENDs, nonce
///   `EQUIVOCATE_NONCE_BASE + traitor`) *may* legitimately certify —
///   whichever story wins the echo race — but never both.
/// * **Integrity** — any other unscheduled instance delivered by a
///   correct node is a forgery that should have been f voices short of
///   every quorum.
/// * **Exactly-once** — no correct node's log repeats an instance.
fn check_byz_deliveries(
    plan: &FaultPlan,
    records: &[(u32, u64, Option<u64>)],
    violations: &mut Vec<Violation>,
) {
    let correct: BTreeSet<u32> = plan.correct_nodes().into_iter().collect();
    let scheduled = CHAOS_BCAST_BASE..CHAOS_BCAST_BASE + plan.broadcasts.len() as u64;

    let mut dedup: HashSet<(u32, u64)> = HashSet::new();
    let mut by_nonce: BTreeMap<u64, Vec<(u32, Option<u64>)>> = BTreeMap::new();
    let mut dups = 0;
    for &(node, nonce, digest) in records {
        if !correct.contains(&node) {
            continue; // a traitor's log carries no promises
        }
        if !dedup.insert((node, nonce)) && dups < MAX_VIOLATIONS_PER_CHECK {
            dups += 1;
            violations.push(Violation::DuplicateDelivery {
                broadcast_id: nonce,
                node,
            });
        }
        by_nonce.entry(nonce).or_default().push((node, digest));
    }

    // Validity + integrity on the scheduled instances.
    let mut missed = 0;
    for idx in 0..plan.broadcasts.len() {
        let nonce = CHAOS_BCAST_BASE + idx as u64;
        let expected = lhg_byzantine::digest(&byz_payload(idx));
        let empty = Vec::new();
        let deliveries = by_nonce.get(&nonce).unwrap_or(&empty);
        let deliverers: BTreeSet<u32> = deliveries.iter().map(|&(v, _)| v).collect();
        for &v in &correct {
            if !deliverers.contains(&v) && missed < MAX_VIOLATIONS_PER_CHECK {
                missed += 1;
                violations.push(Violation::ValidityMissed { nonce, node: v });
            }
        }
        for &(node, digest) in deliveries {
            if digest != Some(expected) && violations.len() < MAX_VIOLATIONS_PER_CHECK * 4 {
                violations.push(Violation::IntegrityForged { nonce, node });
            }
        }
    }

    // Unscheduled instances: an equivocator's own instance may certify
    // (one story or the other), but must agree; anything else is forged.
    for (&nonce, deliveries) in &by_nonce {
        if scheduled.contains(&nonce) {
            continue;
        }
        let from_equivocator = plan.traitors.iter().any(|t| {
            t.behavior == TraitorBehavior::Equivocate
                && nonce == EQUIVOCATE_NONCE_BASE + u64::from(t.node)
        });
        if from_equivocator {
            let (first_node, first_digest) = deliveries[0];
            for &(node, digest) in &deliveries[1..] {
                if digest != first_digest {
                    violations.push(Violation::AgreementBroken {
                        nonce,
                        node_a: first_node,
                        node_b: node,
                    });
                    break;
                }
            }
        } else {
            for &(node, _) in deliveries.iter().take(MAX_VIOLATIONS_PER_CHECK) {
                violations.push(Violation::IntegrityForged { nonce, node });
            }
        }
    }
}

/// The rejoin-divergence oracle, shared by both engines: a correct node
/// that crashed and returned must converge with the *stable majority* —
/// the correct nodes that never went down. Every instance the majority
/// certified must land in the rejoiner's log with the same digest
/// (including instances originated while it was dead — catch-up's job),
/// and the rejoiner must certify nothing the majority never did — a
/// forged catch-up summary that slipped past corroboration would surface
/// exactly there. Agreement *inside* the majority is
/// [`check_byz_deliveries`]' charge, not this one's.
fn check_rejoin_divergence(
    plan: &FaultPlan,
    records: &[(u32, u64, Option<u64>)],
    violations: &mut Vec<Violation>,
) {
    let traitors: BTreeSet<u32> = plan.traitors.iter().map(|t| t.node).collect();
    let rejoiners: Vec<u32> = plan
        .crashes
        .iter()
        .filter(|c| c.recover_at_us.is_some() && !traitors.contains(&c.node))
        .map(|c| c.node)
        .collect();
    if rejoiners.is_empty() {
        return;
    }
    let majority: BTreeSet<u32> = plan.correct_nodes().into_iter().collect();
    let mut majority_digest: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for &(node, nonce, digest) in records {
        if majority.contains(&node) {
            majority_digest.entry(nonce).or_insert(digest);
        }
    }
    for &r in &rejoiners {
        let mine: BTreeMap<u64, Option<u64>> = records
            .iter()
            .filter(|&&(node, _, _)| node == r)
            .map(|&(_, nonce, digest)| (nonce, digest))
            .collect();
        let mut charged = 0;
        for (&nonce, &expected) in &majority_digest {
            if charged >= MAX_VIOLATIONS_PER_CHECK {
                break;
            }
            match mine.get(&nonce) {
                None => {
                    charged += 1;
                    violations.push(Violation::RejoinDivergence {
                        node: r,
                        nonce,
                        detail: "never certified an instance the stable majority delivered \
                                 (catch-up failed)"
                            .into(),
                    });
                }
                Some(&got) if got != expected => {
                    charged += 1;
                    violations.push(Violation::RejoinDivergence {
                        node: r,
                        nonce,
                        detail: format!(
                            "certified digest {got:?}, stable majority certified {expected:?}"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        for &nonce in mine.keys() {
            if charged >= MAX_VIOLATIONS_PER_CHECK {
                break;
            }
            if !majority_digest.contains_key(&nonce) {
                charged += 1;
                violations.push(Violation::RejoinDivergence {
                    node: r,
                    nonce,
                    detail: "certified an instance the stable majority never delivered \
                             (forged catch-up summary)"
                        .into(),
                });
            }
        }
    }
}

/// Delivery, dedup, hop-sanity, and termination checks on a sim report.
fn check_sim_report(plan: &FaultPlan, report: &SimReport, violations: &mut Vec<Violation>) {
    if report.end_time > plan.horizon_us {
        violations.push(Violation::Timeout {
            phase: "virtual-time horizon".into(),
        });
    }

    let mut delivered: HashSet<(u32, u64)> = HashSet::new();
    let mut dups = 0;
    let mut hop_overruns = 0;
    for d in &report.deliveries {
        let node = d.node.index() as u32;
        if !delivered.insert((node, d.broadcast_id)) && dups < MAX_VIOLATIONS_PER_CHECK {
            dups += 1;
            violations.push(Violation::DuplicateDelivery {
                broadcast_id: d.broadcast_id,
                node,
            });
        }
        // Flooding forwards only on first receipt, so no delivered copy can
        // have crossed more than n−1 edges — under any fault schedule.
        if d.hops >= plan.n as u32 && hop_overruns < MAX_VIOLATIONS_PER_CHECK {
            hop_overruns += 1;
            violations.push(Violation::HopBoundExceeded {
                broadcast_id: d.broadcast_id,
                node,
                hops: d.hops,
                bound: plan.n as u32 - 1,
            });
        }
    }

    // Strict delivery, no lossless carve-out: every broadcast from a
    // correct origin reaches every correct node (LHG property P1). The
    // reliable link layer plus anti-entropy makes this hold on lossy
    // plans too — drops, duplicates and reorders cost latency, never
    // delivery.
    let correct = plan.correct_nodes();
    let mut missed = 0;
    for (idx, _) in plan.broadcasts.iter().enumerate() {
        let id = CHAOS_BCAST_BASE + idx as u64;
        for &v in &correct {
            if !delivered.contains(&(v, id)) && missed < MAX_VIOLATIONS_PER_CHECK {
                missed += 1;
                violations.push(Violation::DeliveryMissed {
                    broadcast_id: id,
                    node: v,
                });
            }
        }
    }
}

/// The aggressive-timing [`RuntimeConfig`] chaos runs use on the TCP
/// engine: fast heartbeats and dials keep a full kill/heal/rejoin cycle
/// within a couple of wall-clock seconds. The suspicion timeout is kept
/// generous relative to the heartbeat period (25 missed beats) so that
/// scheduler stalls on a loaded machine — e.g. a 100-seed sweep running
/// back to back with other jobs — don't fire spurious suspicions outside
/// the injected fault schedule and push a replica past the k−1 budget.
#[must_use]
pub fn tcp_chaos_config(seed: u64, faults: Arc<FaultInjector>) -> RuntimeConfig {
    RuntimeConfig {
        heartbeat_period: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(250),
        dial_backoff: Duration::from_millis(5),
        dial_backoff_cap: Duration::from_millis(80),
        dial_max_attempts: 8,
        dial_timeout: Duration::from_millis(100),
        tick: Duration::from_millis(2),
        launch_timeout: Duration::from_secs(10),
        rng_seed: seed,
        // Deep per-node event rings: a failing run's postmortem JSONL
        // should cover the whole run, not just its quiescent tail.
        recorder_capacity: 1 << 16,
        faults: Some(faults),
        // Default reliable-layer knobs: 30ms retransmit timeout and, with
        // the 10ms heartbeat period above, an anti-entropy summary every
        // 50ms — both comfortably inside the per-broadcast deadlines.
        reliable: lhg_net::reliable::ReliableConfig::default(),
        byzantine: None,
    }
}

/// Runs `plan` on the real TCP runtime and checks the oracle.
///
/// Crash-family plans exercise kill → heal → rejoin; partition plans cut a
/// minority off via the shared injector, heal, and demand full
/// re-convergence (membership agreement, no degraded stragglers, links
/// re-established); lossy plans flood under the default
/// drop/duplicate/reorder rates and demand **strict exactly-once delivery
/// at every member** — the runtime's reliable link layer and anti-entropy
/// repair must absorb the loss. On failure the cluster's merged JSONL
/// event timeline is captured into the report.
#[must_use]
pub fn run_tcp_chaos(plan: &FaultPlan) -> ChaosReport {
    let started = Instant::now();
    let mut violations = Vec::new();

    let mut inj = FaultInjector::new(plan.seed);
    inj.set_default_rates(plan.default_rates);
    let inj = Arc::new(inj);

    let mut config = tcp_chaos_config(plan.seed, Arc::clone(&inj));
    if matches!(plan.family, Family::Byzantine | Family::Mixed) {
        config.byzantine = Some(lhg_runtime::ByzantineSetup {
            f: lhg_byzantine::max_traitors(plan.k),
            traitors: plan
                .traitors
                .iter()
                .map(|t| (u64::from(t.node), t.behavior))
                .collect(),
        });
    }
    let cluster = Cluster::launch(plan.constraint, plan.n, plan.k, config);
    let mut cluster = match cluster {
        Ok(c) => c,
        Err(e) => {
            violations.push(Violation::Timeout {
                phase: format!("launch ({e})"),
            });
            return ChaosReport {
                seed: plan.seed,
                engine: Engine::Tcp,
                family: plan.family,
                n: plan.n,
                k: plan.k,
                violations,
                end_time_us: elapsed_us(started),
                deliveries: 0,
                events_jsonl: None,
                telemetry: None,
            };
        }
    };
    cluster.start_telemetry(TCP_TELEMETRY_CADENCE);

    match plan.family {
        Family::Crash => tcp_crash_schedule(plan, &mut cluster, &mut violations),
        Family::Partition => tcp_partition_schedule(plan, &mut cluster, &inj, &mut violations),
        Family::Lossy => tcp_lossy_schedule(plan, &mut cluster, &mut violations),
        Family::Byzantine => tcp_byzantine_schedule(plan, &mut cluster, &mut violations),
        Family::Mixed => tcp_mixed_schedule(plan, &mut cluster, &mut violations),
    }
    check_no_duplicate_deliveries(&cluster, &mut violations);

    let deliveries = cluster
        .members()
        .iter()
        .map(|&m| cluster.delivered_ids(m).len() + cluster.byz_delivered(m).len())
        .sum();
    let events_jsonl = (!violations.is_empty()).then(|| cluster.events_jsonl());
    let telemetry = cluster
        .stop_telemetry()
        .map(|tl| telemetry_json(&tl, cluster.metrics()));
    cluster.shutdown();

    ChaosReport {
        seed: plan.seed,
        engine: Engine::Tcp,
        family: plan.family,
        n: plan.n,
        k: plan.k,
        violations,
        end_time_us: elapsed_us(started),
        deliveries,
        events_jsonl,
        telemetry,
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Broadcasts from `origin` and requires delivery by `members` within
/// `timeout`, reporting each member that missed it.
fn tcp_broadcast_expect(
    cluster: &mut Cluster,
    origin: u32,
    members: &[MemberId],
    timeout: Duration,
    violations: &mut Vec<Violation>,
) {
    let Ok(id) = cluster.broadcast(origin as MemberId, Bytes::from_static(b"chaos")) else {
        violations.push(Violation::Timeout {
            phase: format!("broadcast from {origin}"),
        });
        return;
    };
    if cluster.await_delivery_by(id, members, timeout) {
        return;
    }
    for &m in members.iter() {
        if !cluster.delivered_ids(m).contains(&id) && violations.len() < MAX_VIOLATIONS_PER_CHECK {
            violations.push(Violation::DeliveryMissed {
                broadcast_id: id,
                node: m as u32,
            });
        }
    }
}

/// Crash family on TCP: broadcast → kill the scheduled victims → heal →
/// broadcast among survivors → rejoin the recovering victims → heal →
/// broadcast to everyone (revenants included).
fn tcp_crash_schedule(plan: &FaultPlan, cluster: &mut Cluster, violations: &mut Vec<Violation>) {
    let specs = &plan.broadcasts;
    tcp_broadcast_expect(
        cluster,
        specs[0].origin,
        &cluster.survivors(),
        Duration::from_secs(5),
        violations,
    );

    let mut crashes = plan.crashes.clone();
    crashes.sort_by_key(|c| c.at_us);
    for c in &crashes {
        if cluster.kill(c.node as MemberId).is_err() {
            violations.push(Violation::Timeout {
                phase: format!("kill {}", c.node),
            });
        }
    }
    if !cluster.await_heal(Duration::from_secs(8)) {
        violations.push(Violation::Timeout {
            phase: "heal after crashes".into(),
        });
        return; // everything downstream would cascade off the stuck heal
    }
    if !cluster.overlays_agree() {
        violations.push(Violation::ReplicaDivergence {
            node: cluster.survivors().first().map_or(0, |&m| m as u32),
            detail: "survivor overlay replicas differ after heal".into(),
        });
    }
    if let Some(g) = cluster.survivor_graph() {
        if !is_k_vertex_connected(&g, plan.k) {
            violations.push(Violation::NotKConnected {
                crashed: crashes.len(),
            });
        }
    }
    tcp_broadcast_expect(
        cluster,
        specs[1].origin,
        &cluster.survivors(),
        Duration::from_secs(5),
        violations,
    );

    let recovering: Vec<MemberId> = crashes
        .iter()
        .filter(|c| c.recover_at_us.is_some())
        .map(|c| c.node as MemberId)
        .collect();
    for &m in &recovering {
        if cluster.rejoin(m).is_err() {
            violations.push(Violation::Timeout {
                phase: format!("rejoin {m}"),
            });
        }
    }
    if !recovering.is_empty() && !cluster.await_heal(Duration::from_secs(8)) {
        violations.push(Violation::Timeout {
            phase: "reconverge after rejoin".into(),
        });
        return;
    }
    // The final broadcast must reach every survivor — the revenants too.
    tcp_broadcast_expect(
        cluster,
        specs[2].origin,
        &cluster.survivors(),
        Duration::from_secs(5),
        violations,
    );
}

/// Partition family on TCP: broadcast → activate the cut through the
/// shared injector → let suspicion and excommunication fire → heal the cut
/// → demand full re-convergence → post-heal broadcasts to all n nodes.
fn tcp_partition_schedule(
    plan: &FaultPlan,
    cluster: &mut Cluster,
    inj: &Arc<FaultInjector>,
    violations: &mut Vec<Violation>,
) {
    let specs = &plan.broadcasts;
    let all = cluster.members();
    tcp_broadcast_expect(
        cluster,
        specs[0].origin,
        &all,
        Duration::from_secs(5),
        violations,
    );

    let p = &plan.partitions[0];
    inj.add_partition_shared(Partition {
        a: p.minority.iter().copied().collect(),
        b: BTreeSet::new(), // wildcard: the rest of the cluster
        from_us: 0,
        until_us: u64::MAX,
        directed: p.directed,
    });
    // Hold the cut for several suspicion windows so the majority
    // excommunicates the minority (and an isolated minority degrades).
    std::thread::sleep(Duration::from_millis(700));
    inj.clear_partitions();

    // Re-convergence: every replica back to full membership, all replicas
    // identical, nobody stuck degraded, every desired link re-established.
    // The deadline is deliberately slack: re-convergence itself takes well
    // under a second, but chaos sweeps share the machine with whatever else
    // is running and a wall-clock deadline is the one place scheduling
    // noise can masquerade as a protocol bug.
    let everyone: BTreeSet<MemberId> = all.iter().copied().collect();
    let converged = poll_until(Duration::from_secs(20), || {
        cluster.degraded_members().is_empty()
            && all.iter().all(|&m| {
                cluster.node(m).is_some_and(|s| {
                    s.overlay_snapshot()
                        .members()
                        .iter()
                        .copied()
                        .collect::<BTreeSet<_>>()
                        == everyone
                })
            })
            && cluster.overlays_agree()
    }) && cluster.await_links(Duration::from_secs(10));
    if !converged {
        violations.push(Violation::Timeout {
            phase: "reconverge after partition heal".into(),
        });
        return;
    }
    for spec in &specs[1..] {
        tcp_broadcast_expect(
            cluster,
            spec.origin,
            &all,
            Duration::from_secs(5),
            violations,
        );
    }
}

/// Lossy family on TCP: floods under the default drop/duplicate/reorder
/// rates with **strict delivery** — the reliable link layer (ack/NACK +
/// retransmit) and heartbeat-cadence anti-entropy must repair every drop,
/// so each broadcast is required at *every* member, not just its origin.
/// The deadline is generous: under heavy loss, delivery rides retransmit
/// timeouts and summary cadences rather than one flood's latency.
fn tcp_lossy_schedule(plan: &FaultPlan, cluster: &mut Cluster, violations: &mut Vec<Violation>) {
    let all = cluster.members();
    for spec in &plan.broadcasts {
        tcp_broadcast_expect(
            cluster,
            spec.origin,
            &all,
            Duration::from_secs(8),
            violations,
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Let in-flight retransmissions (and injected duplicates) drain before
    // the exactly-once sweep.
    std::thread::sleep(Duration::from_millis(300));
}

/// Byzantine family on TCP: every node runs the Bracha engine over byz
/// gossip frames on real sockets, the plan's traitor misbehaves on
/// schedule, and the shared [`check_byz_deliveries`] oracle audits the
/// correct nodes' certified logs afterwards. The await between
/// broadcasts is pacing only — a miss is charged by the final sweep, not
/// twice.
fn tcp_byzantine_schedule(
    plan: &FaultPlan,
    cluster: &mut Cluster,
    violations: &mut Vec<Violation>,
) {
    let correct: Vec<MemberId> = plan
        .correct_nodes()
        .into_iter()
        .map(MemberId::from)
        .collect();
    for (idx, spec) in plan.broadcasts.iter().enumerate() {
        tcp_byz_broadcast_step(cluster, idx, spec, &correct, violations);
    }
    tcp_byz_audit(plan, cluster, &correct, violations);
}

/// Originates the idx-th scheduled byz instance and paces the schedule by
/// awaiting its certification at the correct nodes; a miss here is charged
/// once, by the final audit sweep.
fn tcp_byz_broadcast_step(
    cluster: &mut Cluster,
    idx: usize,
    spec: &BroadcastSpec,
    correct: &[MemberId],
    violations: &mut Vec<Violation>,
) {
    let nonce = CHAOS_BCAST_BASE + idx as u64;
    if cluster
        .byzantine_broadcast(MemberId::from(spec.origin), nonce, byz_payload(idx))
        .is_err()
    {
        violations.push(Violation::Timeout {
            phase: format!("byz broadcast from {}", spec.origin),
        });
        return;
    }
    let _ = cluster.await_byz_delivery(nonce, correct, Duration::from_secs(8));
}

/// Drains trailing attack debris (equivocation floods, forged votes,
/// replays, retransmitted quorum traffic), then audits the correct nodes'
/// certified logs through the engine-shared byzantine oracle and charges
/// [`Violation::QuorumUnsafe`] for any view the Bracha engines refused.
fn tcp_byz_audit(
    plan: &FaultPlan,
    cluster: &Cluster,
    correct: &[MemberId],
    violations: &mut Vec<Violation>,
) {
    std::thread::sleep(Duration::from_millis(300));
    let records: Vec<(u32, u64, Option<u64>)> = correct
        .iter()
        .flat_map(|&m| {
            cluster
                .byz_delivered(m)
                .into_iter()
                .map(move |d| (m as u32, d.broadcast_id, d.trace))
        })
        .collect();
    check_byz_deliveries(plan, &records, violations);
    let unsafe_views = cluster.metrics().counter("byz.unsafe_views").get();
    if unsafe_views > 0 {
        violations.push(Violation::QuorumUnsafe {
            count: unsafe_views,
        });
    }
}

/// Mixed family on TCP: the full lifecycle under fire. Bracha gossip runs
/// under lossy links while traitors attack; a correct node crashes
/// mid-schedule and instances certify at the down-sized views; the victim
/// then *rejoins* — a blank reboot that re-expands every survivor's view
/// upward and catches up over the SYNC summary extension — more instances
/// certify at the re-expanded views; finally a second correct node crashes
/// permanently. The rejoiner sits outside [`FaultPlan::correct_nodes`], so
/// the standard oracle never audits it; [`check_rejoin_divergence`] does,
/// demanding it converge with the stable majority on every certified
/// instance — including the one originated while it was dead.
///
/// `await_heal` is deliberately not used: a `suppress_heartbeat` traitor
/// is *designed* to get itself excommunicated, so replicas legitimately
/// converge on less than the survivor set.
fn tcp_mixed_schedule(plan: &FaultPlan, cluster: &mut Cluster, violations: &mut Vec<Violation>) {
    let correct: Vec<MemberId> = plan
        .correct_nodes()
        .into_iter()
        .map(MemberId::from)
        .collect();
    let mut crashes = plan.crashes.clone();
    crashes.sort_by_key(|c| c.at_us);
    let first = crashes[0]; // recovers mid-run: the lifecycle rejoiner
    let second = crashes[1]; // permanent
    let revive_at = first
        .recover_at_us
        .expect("mixed plans schedule the first crash with a recovery");
    let rejoiner = MemberId::from(first.node);
    let broadcasts: Vec<(usize, &BroadcastSpec)> = plan.broadcasts.iter().enumerate().collect();

    for &(idx, spec) in broadcasts.iter().filter(|(_, b)| b.at_us < first.at_us) {
        tcp_byz_broadcast_step(cluster, idx, spec, &correct, violations);
    }

    if !tcp_kill_and_detect(cluster, rejoiner, &correct, violations) {
        return;
    }

    // Originated while the rejoiner is dead; catch-up must repair these.
    for &(idx, spec) in broadcasts
        .iter()
        .filter(|(_, b)| b.at_us >= first.at_us && b.at_us < revive_at)
    {
        tcp_byz_broadcast_step(cluster, idx, spec, &correct, violations);
    }

    if cluster.rejoin(rejoiner).is_err() {
        violations.push(Violation::Timeout {
            phase: format!("rejoin {rejoiner}"),
        });
        return;
    }
    // Upward churn: every correct survivor must re-admit the rejoiner (and
    // re-expand its quorum views) before the post-revive instances run.
    let readmitted = poll_until(Duration::from_secs(15), || {
        correct.iter().all(|&m| {
            cluster
                .node(m)
                .is_some_and(|s| !s.crashes_applied().contains(&rejoiner))
        })
    });
    if !readmitted {
        violations.push(Violation::Timeout {
            phase: "rejoin re-admission under byzantine corroboration".into(),
        });
        return;
    }

    for &(idx, spec) in broadcasts
        .iter()
        .filter(|(_, b)| b.at_us >= revive_at && b.at_us < second.at_us)
    {
        tcp_byz_broadcast_step(cluster, idx, spec, &correct, violations);
    }

    if !tcp_kill_and_detect(cluster, MemberId::from(second.node), &correct, violations) {
        return;
    }
    for &(idx, spec) in broadcasts.iter().filter(|(_, b)| b.at_us >= second.at_us) {
        tcp_byz_broadcast_step(cluster, idx, spec, &correct, violations);
    }

    // Give catch-up its retry budget before the divergence audit: the
    // rejoiner converging late is fine; never converging is the violation.
    let scheduled: Vec<u64> = (0..plan.broadcasts.len())
        .map(|i| CHAOS_BCAST_BASE + i as u64)
        .collect();
    let _ = poll_until(Duration::from_secs(15), || {
        let got: BTreeSet<u64> = cluster
            .byz_delivered(rejoiner)
            .iter()
            .map(|d| d.broadcast_id)
            .collect();
        scheduled.iter().all(|n| got.contains(n))
    });

    tcp_byz_audit(plan, cluster, &correct, violations);
    let records: Vec<(u32, u64, Option<u64>)> = correct
        .iter()
        .chain(std::iter::once(&rejoiner))
        .flat_map(|&m| {
            cluster
                .byz_delivered(m)
                .into_iter()
                .map(move |d| (m as u32, d.broadcast_id, d.trace))
        })
        .collect();
    check_rejoin_divergence(plan, &records, violations);
}

/// Kills `victim` and waits until every correct survivor has applied the
/// crash. Corroborated suspicion needs f+1 distinct crash reporters; give
/// it several suspicion windows, plus slack for lossy-link retransmits.
/// Returns false (after charging a timeout) if detection never converges.
fn tcp_kill_and_detect(
    cluster: &mut Cluster,
    victim: MemberId,
    correct: &[MemberId],
    violations: &mut Vec<Violation>,
) -> bool {
    if cluster.kill(victim).is_err() {
        violations.push(Violation::Timeout {
            phase: format!("kill {victim}"),
        });
    }
    let detected = poll_until(Duration::from_secs(15), || {
        correct.iter().all(|&m| {
            cluster
                .node(m)
                .is_some_and(|s| s.crashes_applied().contains(&victim))
        })
    });
    if !detected {
        violations.push(Violation::Timeout {
            phase: format!("crash detection of {victim} under byzantine corroboration"),
        });
    }
    detected
}

/// Per-node exactly-once: no member's delivery log repeats a broadcast id,
/// under any fault schedule (duplication faults included — dedup absorbs
/// them; rejoin keeps data ids in the dedup set).
fn check_no_duplicate_deliveries(cluster: &Cluster, violations: &mut Vec<Violation>) {
    let mut reported = 0;
    for m in cluster.members() {
        let mut seen = HashSet::new();
        for id in cluster.delivered_ids(m) {
            if !seen.insert(id) && reported < MAX_VIOLATIONS_PER_CHECK {
                reported += 1;
                violations.push(Violation::DuplicateDelivery {
                    broadcast_id: id,
                    node: m as u32,
                });
            }
        }
    }
}

fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The outcome of a seed sweep: one [`ChaosReport`] per (seed, engine).
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Every report, in execution order.
    pub reports: Vec<ChaosReport>,
}

impl SuiteOutcome {
    /// True when every run passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.reports.iter().all(ChaosReport::passed)
    }

    /// The failing reports, in execution order.
    pub fn failures(&self) -> impl Iterator<Item = &ChaosReport> {
        self.reports.iter().filter(|r| !r.passed())
    }
}

/// Sweeps `count` consecutive seeds starting at `base_seed`, running each
/// plan on every engine in `engines` and invoking `on_report` after each
/// run (the CLI prints progress through it).
pub fn run_suite(
    engines: &[Engine],
    base_seed: u64,
    count: u64,
    quick: bool,
    on_report: impl FnMut(&ChaosReport),
) -> SuiteOutcome {
    run_suite_filtered(engines, base_seed, count, quick, None, on_report)
}

/// Like [`run_suite`], but when `family` is given only plans of that
/// family run: seeds are scanned upward from `base_seed` until `count`
/// matching plans have executed, so `count` always means "runs per
/// engine" regardless of the filter. CI uses this to sweep lossy-family
/// seeds under the strict oracle without paying for the other families.
pub fn run_suite_filtered(
    engines: &[Engine],
    base_seed: u64,
    count: u64,
    quick: bool,
    family: Option<Family>,
    on_report: impl FnMut(&ChaosReport),
) -> SuiteOutcome {
    run_suite_with(
        engines,
        base_seed,
        count,
        quick,
        family,
        &PlanOverrides::default(),
        on_report,
    )
}

/// Like [`run_suite_filtered`], with caller-chosen [`PlanOverrides`]
/// layered over every generated plan — how `lhg chaos --k 5 --traitors 2`
/// pins the byzantine/mixed sweep shape without editing seeds.
pub fn run_suite_with(
    engines: &[Engine],
    base_seed: u64,
    count: u64,
    quick: bool,
    family: Option<Family>,
    overrides: &PlanOverrides,
    mut on_report: impl FnMut(&ChaosReport),
) -> SuiteOutcome {
    let mut reports = Vec::new();
    let mut seed = base_seed;
    let mut ran = 0;
    while ran < count {
        if family.is_none_or(|f| Family::of_seed(seed) == f) {
            let plan = FaultPlan::random_with(seed, quick, overrides);
            for &engine in engines {
                let report = match engine {
                    Engine::Sim => run_sim_chaos(&plan),
                    Engine::Tcp => run_tcp_chaos(&plan),
                };
                on_report(&report);
                reports.push(report);
            }
            ran += 1;
        }
        seed = match seed.checked_add(1) {
            Some(s) => s,
            None => break,
        };
    }
    SuiteOutcome { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_chaos_passes_all_five_families() {
        // Seeds 0..10 cover each family twice (family = seed % 5).
        for seed in 0..10u64 {
            let plan = FaultPlan::random(seed, true);
            let report = run_sim_chaos(&plan);
            assert!(
                report.passed(),
                "seed {seed} ({}) violations: {:?}",
                plan.family.name(),
                report.violations
            );
            assert!(report.deliveries > 0, "seed {seed} delivered nothing");
            assert!(report.end_time_us <= plan.horizon_us);
        }
    }

    #[test]
    fn sim_chaos_is_deterministic() {
        let plan = FaultPlan::random(7, true); // lossy: the faultiest pure family
        assert_eq!(plan.family, Family::Lossy);
        let a = run_sim_chaos(&plan);
        let b = run_sim_chaos(&plan);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.end_time_us, b.end_time_us);
        assert_eq!(a.violations, b.violations);
        // Virtual-time telemetry is part of the deterministic surface.
        assert_eq!(a.telemetry, b.telemetry);
        assert!(
            a.telemetry
                .as_deref()
                .is_some_and(|t| t.contains("\"data\"")),
            "wire decomposition present: {:?}",
            a.telemetry
        );
    }

    #[test]
    fn sim_byzantine_chaos_is_deterministic() {
        let plan = FaultPlan::random(3, true); // byzantine family
        assert_eq!(plan.family, Family::Byzantine);
        let a = run_sim_chaos(&plan);
        let b = run_sim_chaos(&plan);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.end_time_us, b.end_time_us);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn sim_mixed_chaos_is_deterministic() {
        let plan = FaultPlan::random(4, true); // mixed: lies ∘ churn ∘ loss
        assert_eq!(plan.family, Family::Mixed);
        let a = run_sim_chaos(&plan);
        let b = run_sim_chaos(&plan);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.end_time_us, b.end_time_us);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn sim_mixed_quorum_dip_trips_the_oracle() {
        // Sabotage a mixed plan: crash members until the live view falls
        // below the 3f+1 floor. Every refused bump must surface as a
        // QuorumUnsafe violation, not a panic and not silence.
        let mut plan = FaultPlan::random(4, true); // mixed family
        plan.traitors.clear();
        plan.crashes.clear();
        plan.broadcasts = vec![BroadcastSpec {
            origin: 0,
            at_us: 10_000,
        }];
        let f = lhg_byzantine::max_traitors(plan.k);
        let floor = 3 * f + 1;
        for (i, v) in ((floor - 1)..plan.n).enumerate() {
            plan.crashes.push(crate::plan::CrashSpec {
                node: v as u32,
                at_us: 100_000 * (i as u64 + 1),
                recover_at_us: None,
            });
        }
        let report = run_sim_chaos(&plan);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::QuorumUnsafe { count } if *count > 0)),
            "a view below 3f+1 must be charged, got: {:?}",
            report.violations
        );
    }

    #[test]
    fn sim_byzantine_over_budget_trips_the_oracle() {
        // Corrupt past the f = ⌊(k−1)/2⌋ = 1 budget: silence half the
        // cluster. The echo quorum ⌈(n+f+1)/2⌉ becomes unreachable for
        // every honest instance, validity must break — and the oracle has
        // to say so rather than quietly accept the stall.
        let mut plan = FaultPlan::random(3, true); // byzantine family
        let origins: BTreeSet<u32> = plan.broadcasts.iter().map(|b| b.origin).collect();
        plan.traitors.clear();
        let mut node = 0u32;
        while plan.traitors.len() < plan.n / 2 {
            if !origins.contains(&node) {
                plan.traitors.push(crate::plan::TraitorSpec {
                    node,
                    behavior: TraitorBehavior::Silent,
                });
            }
            node += 1;
        }
        let report = run_sim_chaos(&plan);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::ValidityMissed { .. })),
            "over-budget traitors must surface as validity violations, got: {:?}",
            report.violations
        );
    }

    #[test]
    fn sim_oracle_catches_missing_deliveries() {
        // Sabotage: a lossless plan whose only broadcast originates at a
        // node that the schedule immediately crashes — the oracle must
        // notice that correct nodes never deliver.
        let mut plan = FaultPlan::random(0, true); // crash family
        plan.crashes.clear();
        plan.crashes.push(crate::plan::CrashSpec {
            node: 0,
            at_us: 0,
            recover_at_us: None,
        });
        plan.broadcasts.clear();
        plan.broadcasts.push(BroadcastSpec {
            origin: 0, // down from t=0: the flood never starts
            at_us: 10_000,
        });
        let report = run_sim_chaos(&plan);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeliveryMissed { .. })));
    }

    #[test]
    fn tcp_chaos_crash_family_smoke() {
        let plan = FaultPlan::random(0, true); // seed 0 → crash family
        let report = run_tcp_chaos(&plan);
        assert!(
            report.passed(),
            "violations: {:?}\n(events captured: {})",
            report.violations,
            report.events_jsonl.is_some()
        );
        assert!(report.deliveries >= plan.n, "every node delivers something");
    }

    #[test]
    fn tcp_chaos_lossy_family_smoke() {
        let plan = FaultPlan::random(2, true); // seed 2 → lossy family
        let report = run_tcp_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn tcp_chaos_byzantine_family_smoke() {
        let plan = FaultPlan::random(3, true); // seed 3 → byzantine family
        assert_eq!(plan.family, Family::Byzantine);
        let report = run_tcp_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report.deliveries >= plan.correct_nodes().len() * plan.broadcasts.len(),
            "every correct node certifies every scheduled instance"
        );
    }

    #[test]
    fn tcp_chaos_mixed_family_smoke() {
        let plan = FaultPlan::random(4, true); // seed 4 → mixed family
        assert_eq!(plan.family, Family::Mixed);
        let report = run_tcp_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report.deliveries >= plan.correct_nodes().len() * plan.broadcasts.len(),
            "every correct survivor certifies every scheduled instance"
        );
    }

    #[test]
    fn suite_sweeps_seeds_and_reports() {
        let mut seen = 0;
        let outcome = run_suite(&[Engine::Sim], 0, 3, true, |_| seen += 1);
        assert_eq!(outcome.reports.len(), 3);
        assert_eq!(seen, 3);
        assert!(
            outcome.passed(),
            "failures: {:?}",
            outcome.failures().count()
        );
    }
}
