//! Seeded fault-plan DSL.
//!
//! A [`FaultPlan`] is the declarative input to a chaos run: which topology
//! to build, which faults to inject when, and which broadcasts to originate.
//! Plans are *pure data* derived deterministically from one `u64` seed
//! ([`FaultPlan::random`]), so any failing run is reproducible by replaying
//! the printed seed. The same plan drives every engine: the discrete-event
//! simulator executes it in virtual time, the TCP runtime in wall-clock
//! time (microsecond schedules map 1:1 onto wall-clock microseconds).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lhg_core::Constraint;
use lhg_net::fault::{FaultInjector, LinkFaults, Partition};

/// Which fault archetype a seed exercises. Chaos runs cycle through the
/// three families so every seed range covers the whole failure model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Fail-stop crashes (≤ k−1) with optional recovery. Links stay clean,
    /// so the oracle demands strict delivery among always-up nodes.
    Crash,
    /// A time-windowed network partition that isolates a minority of at
    /// most k−1 nodes, then heals. Links stay clean.
    Partition,
    /// Lossy links: drops, duplicates, reorders, extra delay. The reliable
    /// link layer plus anti-entropy must absorb all of it — the oracle
    /// demands strict exactly-once delivery at every correct node, same as
    /// the clean-link families.
    Lossy,
    /// Byzantine traitors: nodes that equivocate, forge, replay, or fall
    /// silent while staying connected. Broadcasts run over the Bracha
    /// echo/ready protocol ([`lhg_byzantine`]); with at most
    /// f = ⌊(k−1)/2⌋ traitors the oracle demands agreement, validity and
    /// integrity at every correct node — strictly.
    Byzantine,
    /// Byzantine ∘ full-lifecycle churn ∘ lossy, composed: traitors (up
    /// to the full f = ⌊(k−1)/2⌋ budget at k up to 5, including the
    /// failure-detector attacks `frame_crash` / `suppress_heartbeat`)
    /// while a correct node crashes mid-run, **rejoins** while broadcasts
    /// keep flowing (the upward view bump plus byz catch-up), a second
    /// correct node then crashes permanently, and every link drops,
    /// duplicates and reorders throughout. Quorums re-size both ways from
    /// the churned membership view; the byzantine oracle applies strictly
    /// among correct survivors, plus `QuorumUnsafe` if any view dips
    /// below 3f+1 and `RejoinDivergence` if the rejoiner disagrees with
    /// the stable majority on anything delivered after its return.
    Mixed,
}

impl Family {
    /// Deterministic family for a seed (cycles through all five).
    #[must_use]
    pub fn of_seed(seed: u64) -> Family {
        match seed % 5 {
            0 => Family::Crash,
            1 => Family::Partition,
            2 => Family::Lossy,
            3 => Family::Byzantine,
            _ => Family::Mixed,
        }
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Family::Crash => "crash",
            Family::Partition => "partition",
            Family::Lossy => "lossy",
            Family::Byzantine => "byzantine",
            Family::Mixed => "mixed",
        }
    }
}

/// Caller-chosen knobs layered over the seeded plan generator: a CLI
/// sweep can pin the connectivity parameter and the traitor count (e.g.
/// k = 5 with the full f = 2 budget) without editing code. `None` fields
/// keep the seeded default. Only the byzantine and mixed families read
/// these; the crash/partition/lossy generators ignore them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanOverrides {
    /// Overlay connectivity parameter (sensible range 3..=5: below 3 the
    /// traitor budget is zero, above 5 cluster sizes get slow for CI).
    pub k: Option<usize>,
    /// Number of traitors to plant, clamped into `1..=⌊(k−1)/2⌋`.
    pub traitors: Option<usize>,
}

/// One scheduled fail-stop crash, optionally followed by a recovery
/// (rejoin on the TCP engine, end of the down window in the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The node that crashes.
    pub node: u32,
    /// Crash time (µs from run start).
    pub at_us: u64,
    /// Recovery time, or `None` for a permanent crash.
    pub recover_at_us: Option<u64>,
}

/// One scheduled partition: `minority` against everyone else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The isolated side (at most k−1 nodes, so the majority can heal).
    pub minority: Vec<u32>,
    /// Activation time (µs from run start).
    pub from_us: u64,
    /// Healing time (µs from run start).
    pub until_us: u64,
    /// When true only minority → majority traffic is cut.
    pub directed: bool,
}

/// One scheduled application broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastSpec {
    /// Originating node (always a node that is up at `at_us`).
    pub origin: u32,
    /// Origination time (µs from run start).
    pub at_us: u64,
}

/// One corrupted node in a byzantine plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraitorSpec {
    /// The corrupted node. Never an origin of a scheduled broadcast.
    pub node: u32,
    /// Its scripted misbehavior.
    pub behavior: lhg_byzantine::TraitorBehavior,
}

/// Nonce base for byzantine plans' scheduled broadcast instances: the
/// i-th scheduled broadcast runs under nonce `CHAOS_BCAST_BASE + i`.
/// Disjoint from the traitor attack ranges
/// ([`lhg_byzantine::EQUIVOCATE_NONCE_BASE`],
/// [`lhg_byzantine::FORGE_NONCE_BASE`]), so the oracle can tell honest
/// instances from attack debris by nonce alone.
pub const CHAOS_BCAST_BASE: u64 = 0x1000;

/// A complete seeded chaos schedule. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The generating seed: printing it reproduces the plan exactly.
    pub seed: u64,
    /// The plan's fault archetype.
    pub family: Family,
    /// Cluster size.
    pub n: usize,
    /// Overlay connectivity parameter.
    pub k: usize,
    /// LHG construction to build.
    pub constraint: Constraint,
    /// Fault rates applied to every link without an override.
    pub default_rates: LinkFaults,
    /// Per-link `(from, to, rates)` overrides.
    pub link_overrides: Vec<(u32, u32, LinkFaults)>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Scheduled crashes.
    pub crashes: Vec<CrashSpec>,
    /// Corrupted nodes (byzantine family only; empty elsewhere).
    pub traitors: Vec<TraitorSpec>,
    /// Scheduled broadcasts.
    pub broadcasts: Vec<BroadcastSpec>,
    /// Virtual-time horizon: every schedule entry fits well inside it.
    pub horizon_us: u64,
}

impl FaultPlan {
    /// Generates the deterministic plan for `seed`. `quick` shrinks the
    /// cluster (CI smoke runs); the schedule shape is otherwise identical.
    #[must_use]
    pub fn random(seed: u64, quick: bool) -> FaultPlan {
        FaultPlan::random_with(seed, quick, &PlanOverrides::default())
    }

    /// Like [`FaultPlan::random`], with caller-chosen [`PlanOverrides`]
    /// layered over the seeded defaults (byzantine and mixed families).
    #[must_use]
    pub fn random_with(seed: u64, quick: bool, overrides: &PlanOverrides) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let family = Family::of_seed(seed);
        // Byzantine plans default to k = 3 (budget of one traitor; at
        // k = 2 the budget is zero — nothing to inject). Mixed plans
        // leave k unpinned up to 5 so the full f = 2 budget is covered.
        let k = match family {
            Family::Byzantine => overrides.k.unwrap_or(3),
            Family::Mixed => overrides
                .k
                .unwrap_or_else(|| if rng.random_bool(0.5) { 3 } else { 5 }),
            _ => rng.random_range(2usize..=3),
        };
        // Keep n − crashes ≥ 2k so healing never hits the membership floor.
        let (lo, hi) = match family {
            // Byz quorum arithmetic additionally needs room for traitors
            // above the crash: n ≥ 2k + 2 already gives n ≥ 4f + 4, which
            // keeps n − 1 − f ≥ ⌈(n+f+1)/2⌉ (echo quorums reachable with
            // one dead node and every traitor mute) for every size here.
            Family::Byzantine | Family::Mixed => (2 * k + 2, 2 * k + 2 + if quick { 2 } else { 4 }),
            _ => (2 * k + 2, if quick { 8 } else { 12 }),
        };
        let n = rng.random_range(lo..=hi);
        // Only the gap-free constructions: JD cannot build some sizes
        // (§4.4 gaps), so a heal or rejoin passing through a gap size would
        // be refused and the run would stall through no fault of the
        // runtime. K-TREE and K-DIAMOND cover every n ≥ 2k.
        let constraint = if rng.random_bool(0.5) {
            Constraint::KDiamond
        } else {
            Constraint::KTree
        };
        let horizon_us = 2_000_000;

        let mut plan = FaultPlan {
            seed,
            family,
            n,
            k,
            constraint,
            default_rates: LinkFaults::default(),
            link_overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            traitors: Vec::new(),
            broadcasts: Vec::new(),
            horizon_us,
        };

        match family {
            Family::Crash => {
                let crashes = rng.random_range(1..=k - 1);
                let mut victims = BTreeSet::new();
                while victims.len() < crashes {
                    victims.insert(rng.random_range(0..n as u32));
                }
                for &node in &victims {
                    let at_us = rng.random_range(150_000u64..=400_000);
                    let recover_at_us = if rng.random_bool(0.5) {
                        Some(at_us + rng.random_range(300_000u64..=600_000))
                    } else {
                        None
                    };
                    plan.crashes.push(CrashSpec {
                        node,
                        at_us,
                        recover_at_us,
                    });
                }
                // One broadcast before, one amid, one after the crash wave;
                // origins are always-up nodes so strict delivery applies.
                for at_us in [10_000u64, 500_000, 1_100_000] {
                    let origin = plan.pick_correct_origin(&mut rng);
                    plan.broadcasts.push(BroadcastSpec { origin, at_us });
                }
            }
            Family::Partition => {
                let m = rng.random_range(1..=k - 1);
                let mut minority = BTreeSet::new();
                while minority.len() < m {
                    minority.insert(rng.random_range(0..n as u32));
                }
                plan.partitions.push(PartitionSpec {
                    minority: minority.into_iter().collect(),
                    from_us: 200_000,
                    until_us: 500_000,
                    directed: rng.random_bool(0.25),
                });
                // Pre-partition and post-heal broadcasts must reach all n
                // nodes; nothing is originated while the cut is active.
                for at_us in [10_000u64, 700_000, 900_000] {
                    let origin = rng.random_range(0..n as u32);
                    plan.broadcasts.push(BroadcastSpec { origin, at_us });
                }
            }
            Family::Lossy => {
                // Heavy rates on purpose: with ack/retransmit underneath,
                // delivery is demanded even when two frames in five vanish
                // and half the rest arrive out of order.
                plan.default_rates = LinkFaults {
                    drop: rng.random_range(5u64..=40) as f64 / 100.0,
                    duplicate: rng.random_range(0u64..=30) as f64 / 100.0,
                    extra_delay_us: rng.random_range(0u64..=3_000),
                    reorder: rng.random_range(0u64..=50) as f64 / 100.0,
                    reorder_window_us: 5_000,
                };
                if rng.random_bool(0.3) {
                    // One fully dead directed link: k-connectivity must
                    // route around it.
                    let from = rng.random_range(0..n as u32);
                    let mut to = rng.random_range(0..n as u32);
                    if to == from {
                        to = (to + 1) % n as u32;
                    }
                    plan.link_overrides.push((
                        from,
                        to,
                        LinkFaults {
                            drop: 1.0,
                            ..LinkFaults::default()
                        },
                    ));
                }
                for _ in 0..5 {
                    plan.broadcasts.push(BroadcastSpec {
                        origin: rng.random_range(0..n as u32),
                        at_us: rng.random_range(10_000u64..=800_000),
                    });
                }
            }
            Family::Byzantine => {
                // Default: one traitor — the f = ⌊(k−1)/2⌋ budget at k = 3.
                // Overrides can raise both k and the planted count (still
                // capped at f). Links stay clean: a traitor's power is
                // lying, not losing frames, and the oracle must attribute
                // every anomaly to it.
                plan.plant_traitors(&mut rng, overrides.traitors.unwrap_or(1));
                // One broadcast early, one amid the attack window, one
                // late; origins are always correct nodes (a traitor origin
                // makes validity unfalsifiable).
                for at_us in [10_000u64, 500_000, 1_100_000] {
                    let origin = plan.pick_correct_origin(&mut rng);
                    plan.broadcasts.push(BroadcastSpec { origin, at_us });
                }
            }
            Family::Mixed => {
                // Lies ∘ full-lifecycle churn ∘ loss. Traitors up to the
                // full budget (seeded 1..=f unless overridden), one
                // correct node that crashes mid-run and *rejoins* 200 ms
                // later — with a broadcast originated while it is down, so
                // catch-up has something real to repair — then a second,
                // permanent crash of a different correct node once the
                // rejoin has settled. Links stay modestly lossy
                // throughout: heavy enough that regossip anti-entropy and
                // the rejoin retry path must both do real work, light
                // enough that the gossip plane converges in the horizon.
                let f = lhg_byzantine::max_traitors(k);
                let want = overrides
                    .traitors
                    .unwrap_or_else(|| rng.random_range(1..=f.max(1)));
                plan.plant_traitors(&mut rng, want);
                let traitor_ids: BTreeSet<u32> = plan.traitors.iter().map(|t| t.node).collect();
                let victim = loop {
                    let v = rng.random_range(0..n as u32);
                    if !traitor_ids.contains(&v) {
                        break v; // traitors lie, they don't die
                    }
                };
                let crash_at = rng.random_range(300_000u64..=400_000);
                plan.crashes.push(CrashSpec {
                    node: victim,
                    at_us: crash_at,
                    recover_at_us: Some(crash_at + 200_000),
                });
                let second = loop {
                    let v = rng.random_range(0..n as u32);
                    if !traitor_ids.contains(&v) && v != victim {
                        break v; // a different correct node dies for good
                    }
                };
                plan.crashes.push(CrashSpec {
                    node: second,
                    at_us: crash_at + 800_000,
                    recover_at_us: None,
                });
                plan.default_rates = LinkFaults {
                    drop: rng.random_range(5u64..=15) as f64 / 100.0,
                    duplicate: rng.random_range(0u64..=15) as f64 / 100.0,
                    extra_delay_us: rng.random_range(0u64..=1_500),
                    reorder: rng.random_range(0u64..=30) as f64 / 100.0,
                    reorder_window_us: 2_000,
                };
                // Two broadcasts before the crash, one originated while
                // the victim is down (the rejoiner must still deliver it
                // via catch-up), two after its rejoin under the re-expanded
                // view, and one after the second, permanent crash — the
                // downward re-size again. Origins are correct survivors.
                for at_us in [
                    10_000,
                    200_000,
                    crash_at + 100_000,
                    crash_at + 400_000,
                    crash_at + 600_000,
                    crash_at + 900_000,
                ] {
                    let origin = plan.pick_correct_origin(&mut rng);
                    plan.broadcasts.push(BroadcastSpec { origin, at_us });
                }
            }
        }
        plan.broadcasts.sort_by_key(|b| b.at_us);
        plan
    }

    /// Plants `want` distinct traitors (clamped into `1..=⌊(k−1)/2⌋`),
    /// behaviors drawn seeded from the full repertoire. Victims are chosen
    /// before origins so [`FaultPlan::pick_correct_origin`] can exclude them.
    fn plant_traitors(&mut self, rng: &mut StdRng, want: usize) {
        let f = lhg_byzantine::max_traitors(self.k).max(1);
        let count = want.clamp(1, f);
        let behaviors = lhg_byzantine::TraitorBehavior::ALL;
        let mut victims = BTreeSet::new();
        while victims.len() < count {
            victims.insert(rng.random_range(0..self.n as u32));
        }
        for node in victims {
            self.traitors.push(TraitorSpec {
                node,
                behavior: behaviors[rng.random_range(0..behaviors.len())],
            });
        }
    }

    /// A random node that is never down during the run.
    fn pick_correct_origin(&self, rng: &mut StdRng) -> u32 {
        let correct = self.correct_nodes();
        correct[rng.random_range(0..correct.len())]
    }

    /// Nodes with no scheduled crash and no traitor role — the nodes the
    /// delivery oracle demands delivery from and to, on every family.
    #[must_use]
    pub fn correct_nodes(&self) -> Vec<u32> {
        let crashed: BTreeSet<u32> = self.crashes.iter().map(|c| c.node).collect();
        let traitors: BTreeSet<u32> = self.traitors.iter().map(|t| t.node).collect();
        (0..self.n as u32)
            .filter(|v| !crashed.contains(v) && !traitors.contains(v))
            .collect()
    }

    /// `true` when links neither drop nor corrupt traffic. Retained for
    /// plan introspection and reporting only: the delivery oracle is
    /// strict regardless — lossy runs must deliver too, through the
    /// reliable link layer and anti-entropy repair.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.default_rates.drop == 0.0 && self.link_overrides.is_empty()
    }

    /// Compiles the full plan — rates, partitions, **and** node down
    /// windows — into a [`FaultInjector`] for the virtual-time engines.
    #[must_use]
    pub fn compile(&self) -> FaultInjector {
        let mut inj = self.compile_rates_only();
        for p in &self.partitions {
            inj.add_partition(Partition {
                a: p.minority.iter().copied().collect(),
                b: BTreeSet::new(), // wildcard: everyone else
                from_us: p.from_us,
                until_us: p.until_us,
                directed: p.directed,
            });
        }
        for c in &self.crashes {
            inj.set_node_down(c.node, c.at_us, c.recover_at_us.unwrap_or(u64::MAX));
        }
        inj
    }

    /// Compiles only the link-rate part of the plan. The TCP runner uses
    /// this and orchestrates partitions/crashes itself in wall-clock time
    /// (precompiled windows would start ticking during cluster launch).
    #[must_use]
    pub fn compile_rates_only(&self) -> FaultInjector {
        let mut inj = FaultInjector::new(self.seed);
        inj.set_default_rates(self.default_rates);
        for &(from, to, rates) in &self.link_overrides {
            inj.set_link(from, to, rates);
        }
        inj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        for seed in 0..30u64 {
            let a = FaultPlan::random(seed, false);
            let b = FaultPlan::random(seed, false);
            assert_eq!(a.n, b.n);
            assert_eq!(a.k, b.k);
            assert_eq!(a.crashes, b.crashes);
            assert_eq!(a.partitions, b.partitions);
            assert_eq!(a.broadcasts, b.broadcasts);
            assert_eq!(a.default_rates, b.default_rates);
        }
    }

    #[test]
    fn families_cycle_and_respect_budgets() {
        for seed in 0..60u64 {
            let plan = FaultPlan::random(seed, false);
            assert_eq!(plan.family, Family::of_seed(seed));
            assert!(plan.n >= 2 * plan.k + 2);
            match plan.family {
                Family::Crash => {
                    assert!(!plan.crashes.is_empty());
                    assert!(plan.crashes.len() < plan.k, "crash budget");
                    assert!(plan.is_lossless());
                    let correct = plan.correct_nodes();
                    for b in &plan.broadcasts {
                        assert!(correct.contains(&b.origin), "origin must be correct");
                    }
                }
                Family::Partition => {
                    assert_eq!(plan.partitions.len(), 1);
                    assert!(plan.partitions[0].minority.len() < plan.k);
                    assert!(plan.is_lossless());
                    for b in &plan.broadcasts {
                        let p = &plan.partitions[0];
                        assert!(
                            b.at_us < p.from_us.saturating_sub(50_000)
                                || b.at_us >= p.until_us + 100_000,
                            "broadcasts avoid the active cut"
                        );
                    }
                }
                Family::Lossy => {
                    assert!(plan.default_rates.drop > 0.0);
                    assert!(plan.crashes.is_empty());
                    assert!(plan.partitions.is_empty());
                }
                Family::Byzantine => {
                    assert_eq!(plan.k, 3);
                    assert_eq!(plan.traitors.len(), 1, "exactly the f budget");
                    assert!(plan.is_lossless());
                    assert!(plan.crashes.is_empty());
                    assert!(plan.partitions.is_empty());
                    let correct = plan.correct_nodes();
                    assert!(!correct.contains(&plan.traitors[0].node));
                    for b in &plan.broadcasts {
                        assert!(correct.contains(&b.origin), "origins never traitors");
                    }
                }
                Family::Mixed => {
                    assert!(plan.k == 3 || plan.k == 5, "unpinned k covers both budgets");
                    let f = lhg_byzantine::max_traitors(plan.k);
                    assert!(
                        (1..=f).contains(&plan.traitors.len()),
                        "traitor count within the f budget"
                    );
                    assert_eq!(plan.crashes.len(), 2, "full lifecycle: two crashes");
                    let (first, second) = (&plan.crashes[0], &plan.crashes[1]);
                    let revive_at = first.recover_at_us.expect("first crash rejoins");
                    assert!(revive_at > first.at_us, "revival follows the crash");
                    assert!(second.recover_at_us.is_none(), "second crash is permanent");
                    assert!(
                        second.at_us > revive_at,
                        "the permanent crash lands after the rejoin"
                    );
                    assert_ne!(first.node, second.node, "distinct victims");
                    assert!(
                        plan.broadcasts
                            .iter()
                            .any(|b| b.at_us > first.at_us && b.at_us < revive_at),
                        "a broadcast runs while the rejoiner is down"
                    );
                    assert!(plan.default_rates.drop > 0.0, "links are lossy");
                    let traitors: Vec<u32> = plan.traitors.iter().map(|t| t.node).collect();
                    assert!(
                        !traitors.contains(&first.node) && !traitors.contains(&second.node),
                        "traitors lie, they don't die"
                    );
                    let correct = plan.correct_nodes();
                    for b in &plan.broadcasts {
                        assert!(correct.contains(&b.origin), "origins are correct survivors");
                    }
                }
            }
            if !matches!(plan.family, Family::Byzantine | Family::Mixed) {
                assert!(plan.traitors.is_empty());
            }
            for b in &plan.broadcasts {
                assert!(
                    b.at_us + 500_000 <= plan.horizon_us,
                    "headroom for the flood"
                );
                assert!((b.origin as usize) < plan.n);
            }
        }
    }

    #[test]
    fn compile_reflects_schedule() {
        // Seed 0 is the crash family; its injector must carry down windows.
        let plan = FaultPlan::random(0, false);
        let inj = plan.compile();
        let c = &plan.crashes[0];
        assert!(!inj.down_windows(c.node).is_empty());
        assert!(inj.node_down(c.node, c.at_us));
        // Rates-only compilation never carries windows or partitions.
        let tcp = plan.compile_rates_only();
        assert!(tcp.down_windows(c.node).is_empty());
        assert!(!tcp.blocked(0, 1, c.at_us));
    }

    #[test]
    fn partition_compiles_to_wildcard_cut() {
        // Seed 1 is the partition family.
        let plan = FaultPlan::random(1, false);
        let inj = plan.compile();
        let p = &plan.partitions[0];
        let inside = p.minority[0];
        let outside = (0..plan.n as u32)
            .find(|v| !p.minority.contains(v))
            .unwrap();
        let mid = (p.from_us + p.until_us) / 2;
        assert!(inj.blocked(inside, outside, mid));
        assert!(!inj.blocked(inside, outside, p.until_us));
    }

    #[test]
    fn quick_plans_stay_small() {
        for seed in 0..30u64 {
            let plan = FaultPlan::random(seed, true);
            let cap = match plan.family {
                // Byz/mixed sizes track k so quorum headroom survives the
                // crash: 2k+4 tops out at 14 when the seed picks k = 5.
                Family::Byzantine | Family::Mixed => 2 * plan.k + 4,
                _ => 8,
            };
            assert!(plan.n <= cap, "seed {seed}: n={} cap={cap}", plan.n);
        }
    }

    #[test]
    fn overrides_pin_k_and_traitor_count() {
        let pinned = PlanOverrides {
            k: Some(5),
            traitors: Some(2),
        };
        for seed in [3u64, 4, 8, 9, 13, 14] {
            let plan = FaultPlan::random_with(seed, false, &pinned);
            assert_eq!(plan.k, 5, "seed {seed}");
            assert_eq!(plan.traitors.len(), 2, "full f budget at k=5");
        }
        // The clamp keeps over-asking sound: f = 2 at k = 5.
        let greedy = PlanOverrides {
            k: Some(5),
            traitors: Some(9),
        };
        assert_eq!(FaultPlan::random_with(4, false, &greedy).traitors.len(), 2);
        // Families that don't read overrides are untouched.
        let crash = FaultPlan::random_with(0, false, &pinned);
        assert_eq!(crash.k, FaultPlan::random(0, false).k);
        assert!(crash.traitors.is_empty());
    }
}
