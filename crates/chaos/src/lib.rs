//! Deterministic chaos engine for LHG overlays.
//!
//! The paper's claims are about behaviour *under failure*: a k-connected
//! logarithmic Harary overlay keeps flooding correct through up to k−1
//! fail-stop crashes, and the runtime layer adds partition healing and
//! node rejoin on top. This crate turns those claims into executable,
//! seeded experiments:
//!
//! * [`plan::FaultPlan`] — a declarative fault schedule (link drop /
//!   duplicate / reorder rates, directed partitions, crash + recovery
//!   times, broadcast origination times) generated deterministically from
//!   a single `u64` seed;
//! * [`runner`] — executes one plan on the discrete-event simulator
//!   ([`runner::run_sim_chaos`]) or on the real TCP runtime
//!   ([`runner::run_tcp_chaos`]), and sweeps seed ranges
//!   ([`runner::run_suite`]);
//! * [`oracle`] — the invariants checked afterwards ([`oracle::Violation`])
//!   and the per-run [`oracle::ChaosReport`].
//!
//! Every decision downstream of the seed is deterministic (hash-mixed
//! per-frame fault decisions, seeded RNGs), so a failing run reproduces
//! from its printed seed: `lhg chaos --seed <S> --seeds 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod plan;
pub mod runner;

pub use oracle::{ChaosReport, Engine, Violation};
pub use plan::{
    BroadcastSpec, CrashSpec, Family, FaultPlan, PartitionSpec, PlanOverrides, TraitorSpec,
    CHAOS_BCAST_BASE,
};
pub use runner::{
    run_sim_chaos, run_suite, run_suite_filtered, run_suite_with, run_tcp_chaos, SuiteOutcome,
};
