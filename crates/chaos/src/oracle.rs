//! Invariants checked against a chaos run, and the report they produce.
//!
//! The oracle is deliberately conservative: it only asserts properties the
//! paper's failure model actually guarantees. Strict delivery ("every
//! correct node delivers every broadcast from a correct origin") is
//! demanded only for *lossless* plans — with message loss and no
//! retransmission layer, best-effort flooding cannot promise delivery, so
//! lossy runs are held to termination, dedup, and convergence instead.

use std::fmt;

use crate::plan::Family;

/// One observed violation of a chaos invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A correct node failed to deliver a broadcast from a correct origin
    /// on a lossless run.
    DeliveryMissed {
        /// Broadcast id that went missing.
        broadcast_id: u64,
        /// The node that should have delivered it.
        node: u32,
    },
    /// A node delivered the same broadcast id twice (dedup must make
    /// delivery exactly-once per node, even under duplication faults).
    DuplicateDelivery {
        /// The doubly-delivered broadcast id.
        broadcast_id: u64,
        /// The offending node.
        node: u32,
    },
    /// A delivery's hop count exceeded the engine-appropriate bound
    /// (the P4 logarithmic bound on calibration runs, n−1 always).
    HopBoundExceeded {
        /// Broadcast id of the offending delivery.
        broadcast_id: u64,
        /// The node that delivered it.
        node: u32,
        /// Observed hop count.
        hops: u32,
        /// The bound that was exceeded.
        bound: u32,
    },
    /// After applying the plan's crash set, the surviving overlay is not
    /// k-vertex-connected (the structural P1 guarantee was lost).
    NotKConnected {
        /// Number of crashed nodes applied.
        crashed: usize,
    },
    /// Two live replicas disagree about the membership after the run
    /// settled (crash/join waves must converge).
    ReplicaDivergence {
        /// One of the disagreeing replicas.
        node: u32,
        /// A description of the disagreement.
        detail: String,
    },
    /// A run phase failed to complete within its deadline.
    Timeout {
        /// Which phase stalled (e.g. `"heal"`, `"reconverge"`).
        phase: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DeliveryMissed { broadcast_id, node } => {
                write!(f, "node {node} never delivered broadcast {broadcast_id:#x}")
            }
            Violation::DuplicateDelivery { broadcast_id, node } => {
                write!(f, "node {node} delivered broadcast {broadcast_id:#x} twice")
            }
            Violation::HopBoundExceeded {
                broadcast_id,
                node,
                hops,
                bound,
            } => write!(
                f,
                "broadcast {broadcast_id:#x} reached node {node} in {hops} hops (bound {bound})"
            ),
            Violation::NotKConnected { crashed } => write!(
                f,
                "survivor overlay lost k-connectivity after {crashed} crash(es)"
            ),
            Violation::ReplicaDivergence { node, detail } => {
                write!(f, "replica {node} diverged: {detail}")
            }
            Violation::Timeout { phase } => write!(f, "phase '{phase}' timed out"),
        }
    }
}

/// Which engine executed a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Deterministic discrete-event simulator (virtual time).
    Sim,
    /// Real TCP runtime over loopback sockets (wall-clock time).
    Tcp,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Sim => "sim",
            Engine::Tcp => "tcp",
        })
    }
}

/// The outcome of executing one [`crate::plan::FaultPlan`] on one engine.
#[derive(Debug)]
pub struct ChaosReport {
    /// The reproducing seed.
    pub seed: u64,
    /// Engine that ran the plan.
    pub engine: Engine,
    /// The plan's fault family.
    pub family: Family,
    /// Cluster size of the run.
    pub n: usize,
    /// Connectivity parameter of the run.
    pub k: usize,
    /// Every invariant violation observed (empty means the run passed).
    pub violations: Vec<Violation>,
    /// Virtual or wall-clock end time of the run, µs from start.
    pub end_time_us: u64,
    /// Total deliveries observed across all nodes.
    pub deliveries: usize,
    /// JSONL trace/event dump captured on failure (TCP engine only);
    /// written to disk by the CLI when `--events` is given.
    pub events_jsonl: Option<String>,
}

impl ChaosReport {
    /// True when no invariant was violated.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for the chaos runner's console output.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "seed={} engine={} family={} n={} k={} deliveries={} {}",
            self.seed,
            self.engine,
            self.family.name(),
            self.n,
            self.k,
            self.deliveries,
            if self.passed() {
                "ok".to_string()
            } else {
                format!("FAILED ({} violation(s))", self.violations.len())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_human_readable() {
        let v = Violation::DeliveryMissed {
            broadcast_id: 0x10,
            node: 3,
        };
        assert!(v.to_string().contains("node 3"));
        let t = Violation::Timeout {
            phase: "heal".into(),
        };
        assert!(t.to_string().contains("heal"));
    }

    #[test]
    fn report_summary_flags_failures() {
        let mut r = ChaosReport {
            seed: 42,
            engine: Engine::Sim,
            family: Family::Crash,
            n: 8,
            k: 3,
            violations: Vec::new(),
            end_time_us: 1_000,
            deliveries: 24,
            events_jsonl: None,
        };
        assert!(r.passed());
        assert!(r.summary().contains("ok"));
        r.violations.push(Violation::NotKConnected { crashed: 2 });
        assert!(!r.passed());
        assert!(r.summary().contains("FAILED"));
    }
}
