//! Invariants checked against a chaos run, and the report they produce.
//!
//! The oracle asserts exactly what the stack promises — and since the
//! reliable link layer ([`lhg_net::reliable`]: per-link ack/retransmit
//! plus anti-entropy repair) sits under flooding on both engines, that
//! promise includes **strict exactly-once delivery on lossy runs**: every
//! correct node delivers every broadcast from a correct origin, whether
//! links are clean, dropping two frames in five, duplicating, or
//! reordering. There is no lossless-only carve-out; loss costs latency,
//! never delivery. Termination, dedup, hop-sanity, and convergence checks
//! apply to every family on top.

use std::fmt;

use crate::plan::Family;

/// One observed violation of a chaos invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A correct node failed to deliver a broadcast from a correct origin
    /// — on any run, lossy ones included (the reliable layer must repair
    /// loss).
    DeliveryMissed {
        /// Broadcast id that went missing.
        broadcast_id: u64,
        /// The node that should have delivered it.
        node: u32,
    },
    /// A node delivered the same broadcast id twice (dedup must make
    /// delivery exactly-once per node, even under duplication faults).
    DuplicateDelivery {
        /// The doubly-delivered broadcast id.
        broadcast_id: u64,
        /// The offending node.
        node: u32,
    },
    /// A delivery's hop count exceeded the engine-appropriate bound
    /// (the P4 logarithmic bound on calibration runs, n−1 always).
    HopBoundExceeded {
        /// Broadcast id of the offending delivery.
        broadcast_id: u64,
        /// The node that delivered it.
        node: u32,
        /// Observed hop count.
        hops: u32,
        /// The bound that was exceeded.
        bound: u32,
    },
    /// After applying the plan's crash set, the surviving overlay is not
    /// k-vertex-connected (the structural P1 guarantee was lost).
    NotKConnected {
        /// Number of crashed nodes applied.
        crashed: usize,
    },
    /// Two live replicas disagree about the membership after the run
    /// settled (crash/join waves must converge).
    ReplicaDivergence {
        /// One of the disagreeing replicas.
        node: u32,
        /// A description of the disagreement.
        detail: String,
    },
    /// A run phase failed to complete within its deadline.
    Timeout {
        /// Which phase stalled (e.g. `"heal"`, `"reconverge"`).
        phase: String,
    },
    /// Byzantine agreement broke: two correct nodes certified different
    /// payload digests for the same broadcast instance — the one thing
    /// Bracha's echo quorum exists to prevent.
    AgreementBroken {
        /// Instance nonce the nodes disagree on.
        nonce: u64,
        /// One of the disagreeing correct nodes.
        node_a: u32,
        /// The other.
        node_b: u32,
    },
    /// Byzantine validity broke: a correct origin's broadcast was never
    /// delivered by some correct node, although traitors were within the
    /// f = ⌊(k−1)/2⌋ budget.
    ValidityMissed {
        /// Instance nonce of the missing broadcast.
        nonce: u64,
        /// The correct node that never delivered it.
        node: u32,
    },
    /// Byzantine integrity broke: a correct node delivered an instance no
    /// correct origin broadcast (a forged or equivocated instance reached
    /// a delivery quorum), or delivered a scheduled instance with the
    /// wrong payload digest.
    IntegrityForged {
        /// Instance nonce of the corrupt delivery.
        nonce: u64,
        /// The deceived correct node.
        node: u32,
    },
    /// A correct node that crashed and rejoined diverged from the stable
    /// majority: after its return it must eventually agree with the
    /// always-up correct nodes on every instance they delivered —
    /// including broadcasts originated *while it was dead* (byz catch-up
    /// repairs those) — and it must never contradict integrity on
    /// instances it certified before the crash.
    RejoinDivergence {
        /// The rejoined node.
        node: u32,
        /// Instance nonce it disagrees on.
        nonce: u64,
        /// A description of the disagreement.
        detail: String,
    },
    /// A churned membership view dipped below the 3f+1 quorum floor:
    /// some node's Bracha engine refused a view bump (or a broadcast under
    /// the refused view) because the live membership could no longer
    /// support the traitor budget. Generated plans keep n − crashes well
    /// above the floor, so any occurrence is a runner or detector bug.
    QuorumUnsafe {
        /// Total `byz.unsafe_views` refusals counted across the run.
        count: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DeliveryMissed { broadcast_id, node } => {
                write!(f, "node {node} never delivered broadcast {broadcast_id:#x}")
            }
            Violation::DuplicateDelivery { broadcast_id, node } => {
                write!(f, "node {node} delivered broadcast {broadcast_id:#x} twice")
            }
            Violation::HopBoundExceeded {
                broadcast_id,
                node,
                hops,
                bound,
            } => write!(
                f,
                "broadcast {broadcast_id:#x} reached node {node} in {hops} hops (bound {bound})"
            ),
            Violation::NotKConnected { crashed } => write!(
                f,
                "survivor overlay lost k-connectivity after {crashed} crash(es)"
            ),
            Violation::ReplicaDivergence { node, detail } => {
                write!(f, "replica {node} diverged: {detail}")
            }
            Violation::Timeout { phase } => write!(f, "phase '{phase}' timed out"),
            Violation::AgreementBroken {
                nonce,
                node_a,
                node_b,
            } => write!(
                f,
                "byzantine agreement broken: nodes {node_a} and {node_b} certified \
                 different digests for instance {nonce:#x}"
            ),
            Violation::ValidityMissed { nonce, node } => write!(
                f,
                "byzantine validity missed: correct node {node} never delivered \
                 instance {nonce:#x} from a correct origin"
            ),
            Violation::IntegrityForged { nonce, node } => write!(
                f,
                "byzantine integrity forged: correct node {node} delivered \
                 instance {nonce:#x} that no correct origin broadcast"
            ),
            Violation::RejoinDivergence {
                node,
                nonce,
                detail,
            } => write!(
                f,
                "rejoin divergence: rejoined node {node} disagrees with the stable \
                 majority on instance {nonce:#x}: {detail}"
            ),
            Violation::QuorumUnsafe { count } => write!(
                f,
                "membership view dipped below the 3f+1 quorum floor \
                 ({count} unsafe-view refusal(s))"
            ),
        }
    }
}

/// Which engine executed a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Deterministic discrete-event simulator (virtual time).
    Sim,
    /// Real TCP runtime over loopback sockets (wall-clock time).
    Tcp,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Sim => "sim",
            Engine::Tcp => "tcp",
        })
    }
}

/// The outcome of executing one [`crate::plan::FaultPlan`] on one engine.
#[derive(Debug)]
pub struct ChaosReport {
    /// The reproducing seed.
    pub seed: u64,
    /// Engine that ran the plan.
    pub engine: Engine,
    /// The plan's fault family.
    pub family: Family,
    /// Cluster size of the run.
    pub n: usize,
    /// Connectivity parameter of the run.
    pub k: usize,
    /// Every invariant violation observed (empty means the run passed).
    pub violations: Vec<Violation>,
    /// Virtual or wall-clock end time of the run, µs from start.
    pub end_time_us: u64,
    /// Total deliveries observed across all nodes.
    pub deliveries: usize,
    /// JSONL trace/event dump captured on failure (TCP engine only);
    /// written to disk by the CLI when `--events` is given.
    pub events_jsonl: Option<String>,
    /// Pre-rendered JSON object summarizing the run's telemetry timeline
    /// (sample count, span, per-class wire costs); spliced verbatim into
    /// [`ChaosReport::to_json_line`]. The runner renders it so this module
    /// stays free of JSON dependencies.
    pub telemetry: Option<String>,
}

impl ChaosReport {
    /// True when no invariant was violated.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One JSON object per run, for machine consumption (`lhg chaos
    /// --json`). Hand-rolled — this module carries no JSON dependency —
    /// so the schema is fixed here: scalar run coordinates, a `passed`
    /// flag, the violations as rendered strings, and (when the runner
    /// captured one) the pre-rendered `telemetry` summary object.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str(&format!(
            "{{\"seed\":{},\"engine\":\"{}\",\"family\":\"{}\",\"n\":{},\"k\":{},\
             \"passed\":{},\"end_time_us\":{},\"deliveries\":{},\"violations\":[",
            self.seed,
            self.engine,
            self.family.name(),
            self.n,
            self.k,
            self.passed(),
            self.end_time_us,
            self.deliveries,
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            for c in v.to_string().chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push(']');
        if let Some(t) = &self.telemetry {
            out.push_str(",\"telemetry\":");
            out.push_str(t);
        }
        out.push('}');
        out
    }

    /// One-line summary for the chaos runner's console output.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "seed={} engine={} family={} n={} k={} deliveries={} {}",
            self.seed,
            self.engine,
            self.family.name(),
            self.n,
            self.k,
            self.deliveries,
            if self.passed() {
                "ok".to_string()
            } else {
                format!("FAILED ({} violation(s))", self.violations.len())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_human_readable() {
        let v = Violation::DeliveryMissed {
            broadcast_id: 0x10,
            node: 3,
        };
        assert!(v.to_string().contains("node 3"));
        let t = Violation::Timeout {
            phase: "heal".into(),
        };
        assert!(t.to_string().contains("heal"));
    }

    #[test]
    fn report_summary_flags_failures() {
        let mut r = ChaosReport {
            seed: 42,
            engine: Engine::Sim,
            family: Family::Crash,
            n: 8,
            k: 3,
            violations: Vec::new(),
            end_time_us: 1_000,
            deliveries: 24,
            events_jsonl: None,
            telemetry: None,
        };
        assert!(r.passed());
        assert!(r.summary().contains("ok"));
        r.violations.push(Violation::NotKConnected { crashed: 2 });
        assert!(!r.passed());
        assert!(r.summary().contains("FAILED"));
    }

    #[test]
    fn json_line_is_well_formed() {
        let mut r = ChaosReport {
            seed: 7,
            engine: Engine::Tcp,
            family: Family::Lossy,
            n: 10,
            k: 4,
            violations: Vec::new(),
            end_time_us: 2_500,
            deliveries: 30,
            events_jsonl: None,
            telemetry: None,
        };
        let line = r.to_json_line();
        assert_eq!(
            line,
            "{\"seed\":7,\"engine\":\"tcp\",\"family\":\"lossy\",\"n\":10,\"k\":4,\
             \"passed\":true,\"end_time_us\":2500,\"deliveries\":30,\"violations\":[]}"
        );
        r.violations.push(Violation::ReplicaDivergence {
            node: 2,
            detail: "said \"no\"".into(),
        });
        let line = r.to_json_line();
        assert!(line.contains("\"passed\":false"));
        assert!(line.contains("said \\\"no\\\""), "escaping: {line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_line_splices_the_telemetry_object() {
        let r = ChaosReport {
            seed: 7,
            engine: Engine::Sim,
            family: Family::Crash,
            n: 8,
            k: 3,
            violations: Vec::new(),
            end_time_us: 100,
            deliveries: 8,
            events_jsonl: None,
            telemetry: Some("{\"samples\":4,\"span_us\":100}".into()),
        };
        let line = r.to_json_line();
        assert!(
            line.ends_with(",\"telemetry\":{\"samples\":4,\"span_us\":100}}"),
            "{line}"
        );
    }
}
