//! Property tests: random fault plans never deadlock the simulator and
//! never violate the chaos oracle.
//!
//! Each case generates a [`FaultPlan`] from a random seed and executes it
//! on the discrete-event engine. Termination is implied by `run_sim_chaos`
//! returning at all (the event queue must drain or hit the horizon), and
//! the report certifies it stayed within the virtual-time horizon.

use lhg_chaos::{run_sim_chaos, FaultPlan, Violation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_plans_terminate_within_horizon(seed in 0u64..1_000_000) {
        let plan = FaultPlan::random(seed, true);
        let report = run_sim_chaos(&plan);
        prop_assert!(
            report.end_time_us <= plan.horizon_us,
            "seed {} ran past its horizon: {} > {}",
            seed, report.end_time_us, plan.horizon_us
        );
        prop_assert!(
            report.passed(),
            "seed {} ({}) violated the oracle: {:?}",
            seed, plan.family.name(), report.violations
        );
    }

    #[test]
    fn duplicate_faults_never_double_deliver(seed in 0u64..1_000_000) {
        // Force the lossy family (seed ≡ 2 mod 3): heavy duplication and
        // reordering must still never produce a second delivery anywhere.
        let seed = seed - seed % 3 + 2;
        let plan = FaultPlan::random(seed, true);
        let report = run_sim_chaos(&plan);
        prop_assert!(
            !report.violations.iter().any(|v| matches!(v, Violation::DuplicateDelivery { .. })),
            "seed {} double-delivered: {:?}",
            seed, report.violations
        );
    }
}
