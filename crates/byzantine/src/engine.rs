//! The Bracha quorum state machine, independent of any transport.
//!
//! A [`BrachaEngine`] holds one quorum-tracking `Instance` per broadcast tag it has
//! heard about. Feed it gossip frames ([`BrachaEngine::on_gossip`]) and it
//! returns [`Action`]s: more gossip to flood, and at most one delivery per
//! instance. The engine never talks to a network — the sim flooder, the
//! threaded runner and the TCP runtime all wrap this same type, so the
//! protocol logic is tested once and reused verbatim.
//!
//! Validation rules (the "signed-enough" model):
//!
//! * `SEND` is accepted only from its claimed origin
//!   (`witness == tag.origin`) and only when the carried payload matches
//!   the declared digest. A traitor can still equivocate — send different
//!   payloads to different neighbors — but cannot impersonate a correct
//!   origin.
//! * `ECHO` must carry a payload matching its digest (echoes re-carry the
//!   payload so late joiners can assemble it from any quorum member).
//! * `READY` carries no payload and is never rejected; it only counts as
//!   one witness vote.
//!
//! Frames the engine itself emits are absorbed back into its own state
//! before being returned, so the local node counts as a witness without
//! the caller having to loop frames back.

use std::collections::{BTreeSet, HashMap, VecDeque};

use bytes::Bytes;

use lhg_net::message::ByzTag;

use crate::frame::{digest, GossipFrame, GossipKind};
use crate::BrachaConfig;

/// Protocol phase of one broadcast instance at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Nothing sent yet for this instance.
    Init,
    /// This node has echoed a digest.
    Echoed,
    /// This node has readied a digest.
    Readied,
    /// This node has delivered the instance payload.
    Delivered,
}

/// A delivery decided by the engine: the instance, the certified digest
/// and the assembled payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzDelivery {
    /// The delivered broadcast instance.
    pub tag: ByzTag,
    /// Digest the delivery quorum certified.
    pub digest: u64,
    /// The payload matching that digest.
    pub payload: Bytes,
}

/// What the caller must do with an engine result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Flood this frame to all overlay neighbors.
    Gossip(GossipFrame),
    /// Hand this payload to the application, exactly once per instance.
    Deliver(ByzDelivery),
}

/// Per-instance quorum state.
#[derive(Debug, Default)]
struct Instance {
    /// Payloads seen for this instance, keyed by their digest.
    payloads: HashMap<u64, Bytes>,
    /// Digest this node echoed, if any (first valid SEND wins).
    echoed: Option<u64>,
    /// Digest this node readied, if any.
    readied: Option<u64>,
    delivered: bool,
    /// Distinct echo witnesses per digest.
    echo_witnesses: HashMap<u64, BTreeSet<u32>>,
    /// Distinct ready witnesses per digest.
    ready_witnesses: HashMap<u64, BTreeSet<u32>>,
}

/// One node's Bracha state across all broadcast instances it has seen.
#[derive(Debug)]
pub struct BrachaEngine {
    me: u32,
    cfg: BrachaConfig,
    instances: HashMap<ByzTag, Instance>,
}

impl BrachaEngine {
    /// Engine for node `me` under quorum config `cfg`.
    #[must_use]
    pub fn new(me: u32, cfg: BrachaConfig) -> Self {
        BrachaEngine {
            me,
            cfg,
            instances: HashMap::new(),
        }
    }

    /// The node id this engine acts as.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.me
    }

    /// The quorum configuration.
    #[must_use]
    pub fn config(&self) -> BrachaConfig {
        self.cfg
    }

    /// Phase of instance `tag` at this node.
    #[must_use]
    pub fn phase(&self, tag: ByzTag) -> Phase {
        match self.instances.get(&tag) {
            None => Phase::Init,
            Some(i) if i.delivered => Phase::Delivered,
            Some(i) if i.readied.is_some() => Phase::Readied,
            Some(i) if i.echoed.is_some() => Phase::Echoed,
            Some(_) => Phase::Init,
        }
    }

    /// Originates a broadcast from this node: emits the `SEND` (and the
    /// follow-on `ECHO`, since the origin is its own first witness).
    pub fn broadcast(&mut self, nonce: u64, payload: Bytes) -> Vec<Action> {
        let tag = ByzTag {
            origin: self.me,
            nonce,
        };
        let send = GossipFrame {
            kind: GossipKind::Send,
            witness: self.me,
            tag,
            digest: digest(&payload),
            payload,
        };
        // The SEND itself must be flooded too — absorb only returns frames
        // the engine *reacts* with (the caller is assumed to have relayed
        // whatever it fed in, which for an origination is this frame).
        let mut out = vec![Action::Gossip(send.clone())];
        out.extend(self.absorb(send));
        out
    }

    /// Processes one incoming gossip frame; returns frames to flood and
    /// any delivery it unlocked.
    pub fn on_gossip(&mut self, frame: &GossipFrame) -> Vec<Action> {
        self.absorb(frame.clone())
    }

    /// Runs `first` plus every frame it causes this node to emit, until
    /// the local cascade settles.
    fn absorb(&mut self, first: GossipFrame) -> Vec<Action> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([first]);
        while let Some(frame) = queue.pop_front() {
            for action in self.step(&frame) {
                if let Action::Gossip(f) = &action {
                    queue.push_back(f.clone());
                }
                out.push(action);
            }
        }
        out
    }

    /// Applies a single frame to local state. Emitted gossip is NOT yet
    /// absorbed — [`Self::absorb`] loops it back.
    fn step(&mut self, frame: &GossipFrame) -> Vec<Action> {
        // Validate before touching state.
        let carries_payload = match frame.kind {
            GossipKind::Send => {
                if frame.witness != frame.tag.origin || digest(&frame.payload) != frame.digest {
                    return Vec::new();
                }
                true
            }
            GossipKind::Echo => {
                if digest(&frame.payload) != frame.digest {
                    return Vec::new();
                }
                true
            }
            GossipKind::Ready => false,
        };

        let echo_quorum = self.cfg.echo_quorum();
        let ready_amplify = self.cfg.ready_amplify();
        let delivery_quorum = self.cfg.delivery_quorum();
        let me = self.me;

        let inst = self.instances.entry(frame.tag).or_default();
        if carries_payload {
            inst.payloads
                .entry(frame.digest)
                .or_insert_with(|| frame.payload.clone());
        }
        match frame.kind {
            GossipKind::Send => {}
            GossipKind::Echo => {
                inst.echo_witnesses
                    .entry(frame.digest)
                    .or_default()
                    .insert(frame.witness);
            }
            GossipKind::Ready => {
                inst.ready_witnesses
                    .entry(frame.digest)
                    .or_default()
                    .insert(frame.witness);
            }
        }

        let mut actions = Vec::new();

        // Echo the first valid SEND for this instance.
        if frame.kind == GossipKind::Send && inst.echoed.is_none() {
            inst.echoed = Some(frame.digest);
            actions.push(Action::Gossip(GossipFrame {
                kind: GossipKind::Echo,
                witness: me,
                tag: frame.tag,
                digest: frame.digest,
                payload: frame.payload.clone(),
            }));
        }

        // Ready on echo quorum or ready amplification, once.
        if inst.readied.is_none() {
            let ready_digest = inst
                .echo_witnesses
                .iter()
                .find(|(_, w)| w.len() >= echo_quorum)
                .or_else(|| {
                    inst.ready_witnesses
                        .iter()
                        .find(|(_, w)| w.len() >= ready_amplify)
                })
                .map(|(&d, _)| d);
            if let Some(d) = ready_digest {
                inst.readied = Some(d);
                actions.push(Action::Gossip(GossipFrame {
                    kind: GossipKind::Ready,
                    witness: me,
                    tag: frame.tag,
                    digest: d,
                    payload: Bytes::new(),
                }));
            }
        }

        // Deliver on ready quorum, once, as soon as the payload is known.
        if !inst.delivered {
            let decided = inst
                .ready_witnesses
                .iter()
                .find(|(_, w)| w.len() >= delivery_quorum)
                .map(|(&d, _)| d);
            if let Some(d) = decided {
                if let Some(payload) = inst.payloads.get(&d) {
                    inst.delivered = true;
                    actions.push(Action::Deliver(ByzDelivery {
                        tag: frame.tag,
                        digest: d,
                        payload: payload.clone(),
                    }));
                }
            }
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrachaConfig {
        BrachaConfig::new(8, 1) // echo quorum 5, amplify 2, deliver 3
    }

    fn tag(origin: u32, nonce: u64) -> ByzTag {
        ByzTag { origin, nonce }
    }

    fn gossip_of(actions: &[Action]) -> Vec<&GossipFrame> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Gossip(f) => Some(f),
                Action::Deliver(_) => None,
            })
            .collect()
    }

    fn deliveries_of(actions: &[Action]) -> Vec<&ByzDelivery> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(d) => Some(d),
                Action::Gossip(_) => None,
            })
            .collect()
    }

    /// Drives a full correct-node mesh: every emitted frame is handed to
    /// every other engine until quiescence. Returns deliveries per node.
    fn run_mesh(
        engines: &mut [BrachaEngine],
        initial: Vec<(usize, GossipFrame)>,
    ) -> Vec<Vec<ByzDelivery>> {
        let n = engines.len();
        let mut delivered: Vec<Vec<ByzDelivery>> = vec![Vec::new(); n];
        // (recipient, frame) work queue; sender's own absorption already done.
        let mut queue: VecDeque<(usize, GossipFrame)> = initial.into();
        while let Some((to, frame)) = queue.pop_front() {
            for action in engines[to].on_gossip(&frame) {
                match action {
                    Action::Gossip(f) => {
                        for peer in 0..n {
                            if peer != to {
                                queue.push_back((peer, f.clone()));
                            }
                        }
                    }
                    Action::Deliver(d) => delivered[to].push(d),
                }
            }
        }
        delivered
    }

    #[test]
    fn origin_broadcast_emits_send_and_echo() {
        let mut e = BrachaEngine::new(0, cfg());
        let actions = e.broadcast(7, Bytes::from_static(b"hi"));
        let gossip = gossip_of(&actions);
        assert_eq!(gossip.len(), 2);
        assert_eq!(gossip[0].kind, GossipKind::Send);
        assert_eq!(gossip[1].kind, GossipKind::Echo);
        assert!(deliveries_of(&actions).is_empty());
        assert_eq!(e.phase(tag(0, 7)), Phase::Echoed);
    }

    #[test]
    fn all_correct_mesh_delivers_exactly_once_everywhere() {
        let n = 8;
        let mut engines: Vec<BrachaEngine> =
            (0..n as u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let payload = Bytes::from_static(b"agreed value");
        let mut initial = Vec::new();
        let mut origin_delivered = Vec::new();
        for action in engines[0].broadcast(1, payload.clone()) {
            match action {
                Action::Gossip(f) => {
                    for peer in 1..n {
                        initial.push((peer, f.clone()));
                    }
                }
                Action::Deliver(d) => origin_delivered.push(d),
            }
        }
        let mut delivered = run_mesh(&mut engines, initial);
        delivered[0].extend(origin_delivered);
        for (v, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "node {v} delivers exactly once");
            assert_eq!(d[0].payload, payload);
            assert_eq!(d[0].tag, tag(0, 1));
        }
        for e in &engines {
            assert_eq!(e.phase(tag(0, 1)), Phase::Delivered);
        }
    }

    #[test]
    fn empty_payload_broadcast_still_delivers() {
        let n = 8;
        let mut engines: Vec<BrachaEngine> =
            (0..n as u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let mut initial = Vec::new();
        for action in engines[3].broadcast(9, Bytes::new()) {
            if let Action::Gossip(f) = action {
                for peer in 0..n {
                    if peer != 3 {
                        initial.push((peer, f.clone()));
                    }
                }
            }
        }
        let delivered = run_mesh(&mut engines, initial);
        for (v, d) in delivered.iter().enumerate() {
            if v != 3 {
                assert_eq!(d.len(), 1, "node {v}");
                assert!(d[0].payload.is_empty());
            }
        }
    }

    #[test]
    fn equivocating_origin_cannot_split_correct_nodes() {
        // n=8, f=1: node 7 is the traitor origin, sending payload A to
        // engines 0..3 and payload B to engines 3..7. At most one digest
        // can gather the echo quorum of 5 among 7 correct nodes — so no
        // two correct nodes may deliver different payloads.
        let mut engines: Vec<BrachaEngine> =
            (0..7u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let t = tag(7, 1);
        let mk = |payload: &'static [u8]| GossipFrame {
            kind: GossipKind::Send,
            witness: 7,
            tag: t,
            digest: digest(payload),
            payload: Bytes::from_static(payload),
        };
        let mut initial = Vec::new();
        for peer in 0..3 {
            initial.push((peer, mk(b"A")));
        }
        for peer in 3..7 {
            initial.push((peer, mk(b"B")));
        }
        let delivered = run_mesh(&mut engines, initial);
        let digests: BTreeSet<u64> = delivered.iter().flatten().map(|d| d.digest).collect();
        assert!(
            digests.len() <= 1,
            "agreement: at most one digest delivered"
        );
        // Totality: if any correct node delivered, all did.
        let any = delivered.iter().any(|d| !d.is_empty());
        if any {
            assert!(delivered.iter().all(|d| d.len() == 1));
        }
    }

    #[test]
    fn forged_send_impersonating_correct_origin_is_dropped() {
        let mut e = BrachaEngine::new(1, cfg());
        let forged = GossipFrame {
            kind: GossipKind::Send,
            witness: 5,     // traitor vouching...
            tag: tag(0, 1), // ...for an instance it claims node 0 originated
            digest: digest(b"fake"),
            payload: Bytes::from_static(b"fake"),
        };
        assert!(e.on_gossip(&forged).is_empty());
        assert_eq!(e.phase(tag(0, 1)), Phase::Init);
    }

    #[test]
    fn digest_mismatch_is_dropped() {
        let mut e = BrachaEngine::new(1, cfg());
        let bad = GossipFrame {
            kind: GossipKind::Echo,
            witness: 2,
            tag: tag(0, 1),
            digest: 0xdead,
            payload: Bytes::from_static(b"does not hash to 0xdead"),
        };
        assert!(e.on_gossip(&bad).is_empty());
    }

    #[test]
    fn duplicate_witness_votes_count_once() {
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let ready = |w: u32| GossipFrame {
            kind: GossipKind::Ready,
            witness: w,
            tag: t,
            digest: 42,
            payload: Bytes::new(),
        };
        // The same witness readying twice must not amplify (threshold 2).
        assert!(e.on_gossip(&ready(3)).is_empty());
        assert!(e.on_gossip(&ready(3)).is_empty());
        assert_eq!(e.phase(t), Phase::Init);
        // A second distinct witness does.
        let actions = e.on_gossip(&ready(4));
        let gossip = gossip_of(&actions);
        assert_eq!(gossip.len(), 1);
        assert_eq!(gossip[0].kind, GossipKind::Ready);
        assert_eq!(e.phase(t), Phase::Readied);
    }

    #[test]
    fn delivery_waits_for_payload_then_fires_on_arrival() {
        // Readys can outrun the payload: the node must hold delivery until
        // an ECHO carrying the payload arrives, then deliver immediately.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let payload = Bytes::from_static(b"late payload");
        let d = digest(&payload);
        for w in 0..3u32 {
            let ready = GossipFrame {
                kind: GossipKind::Ready,
                witness: w,
                tag: t,
                digest: d,
                payload: Bytes::new(),
            };
            assert!(deliveries_of(&e.on_gossip(&ready)).is_empty());
        }
        assert_eq!(e.phase(t), Phase::Readied, "readied but cannot deliver yet");
        let echo = GossipFrame {
            kind: GossipKind::Echo,
            witness: 3,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let actions = e.on_gossip(&echo);
        let delivered = deliveries_of(&actions);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, payload);
        assert_eq!(e.phase(t), Phase::Delivered);
    }

    #[test]
    fn over_bound_collusion_forges_a_delivery() {
        // Bound tightness: the protocol is configured for f=1 (delivery
        // quorum 3), but THREE traitors collude — witnesses 2, 3, 4 all
        // echo and ready a forged instance claiming origin 0. The victim
        // accumulates 3 ready witnesses plus the payload, and delivers a
        // broadcast node 0 never sent. This is exactly what the chaos
        // oracle's Integrity check fires on.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 0xF000);
        let payload = Bytes::from_static(b"forged");
        let d = digest(&payload);
        let mut delivered = Vec::new();
        for w in [2u32, 3, 4] {
            let echo = GossipFrame {
                kind: GossipKind::Echo,
                witness: w,
                tag: t,
                digest: d,
                payload: payload.clone(),
            };
            let ready = GossipFrame {
                kind: GossipKind::Ready,
                witness: w,
                tag: t,
                digest: d,
                payload: Bytes::new(),
            };
            for a in e.on_gossip(&echo).into_iter().chain(e.on_gossip(&ready)) {
                if let Action::Deliver(del) = a {
                    delivered.push(del);
                }
            }
        }
        assert_eq!(delivered.len(), 1, "victim delivers the forged instance");
        assert_eq!(delivered[0].tag, t);
        // Under the bound (a single traitor) the same attack goes nowhere:
        let mut e2 = BrachaEngine::new(6, cfg());
        let echo = GossipFrame {
            kind: GossipKind::Echo,
            witness: 2,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let ready = GossipFrame {
            kind: GossipKind::Ready,
            witness: 2,
            tag: t,
            digest: d,
            payload: Bytes::new(),
        };
        assert!(e2.on_gossip(&echo).is_empty());
        assert!(deliveries_of(&e2.on_gossip(&ready)).is_empty());
        assert_ne!(e2.phase(t), Phase::Delivered);
    }
}
