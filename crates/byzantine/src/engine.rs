//! The Bracha quorum state machine, independent of any transport.
//!
//! A [`BrachaEngine`] holds one quorum-tracking `Instance` per broadcast tag it has
//! heard about. Feed it gossip frames ([`BrachaEngine::on_gossip`]) and it
//! returns [`Action`]s: more gossip to flood, and at most one delivery per
//! instance. The engine never talks to a network — the sim flooder, the
//! threaded runner and the TCP runtime all wrap this same type, so the
//! protocol logic is tested once and reused verbatim.
//!
//! Validation rules (the "signed-enough" model):
//!
//! * `SEND` is accepted only from its claimed origin
//!   (`witness == tag.origin`) and only when the carried payload matches
//!   the declared digest. A traitor can still equivocate — send different
//!   payloads to different neighbors — but cannot impersonate a correct
//!   origin.
//! * `ECHO` must carry a payload matching its digest (echoes re-carry the
//!   payload so late joiners can assemble it from any quorum member).
//! * `READY` carries no payload and is never rejected; it only counts as
//!   one witness vote.
//!
//! Frames the engine itself emits are absorbed back into its own state
//! before being returned, so the local node counts as a witness without
//! the caller having to loop frames back.

use std::collections::{BTreeSet, HashMap, VecDeque};

use bytes::Bytes;

use lhg_net::message::ByzTag;

use crate::frame::{digest, GossipFrame, GossipKind};
use crate::{BrachaConfig, UnsoundMembership};

/// An epoch-stamped membership view: the quorum parameters in force at a
/// particular point of the cluster's churn history.
///
/// The engine holds the *current* view and bumps it on every membership
/// change ([`BrachaEngine::bump_view`]); each broadcast instance snapshots
/// the view live when it is created and keeps it for its whole lifetime —
/// in-flight quorum accounting never resizes mid-instance, which would
/// silently weaken the intersection arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipView {
    /// Monotone churn counter: 0 at boot, +1 per applied crash/join/sync.
    pub epoch: u64,
    /// Quorum parameters sized for this view's live membership.
    pub cfg: BrachaConfig,
}

/// Protocol phase of one broadcast instance at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Nothing sent yet for this instance.
    Init,
    /// This node has echoed a digest.
    Echoed,
    /// This node has readied a digest.
    Readied,
    /// This node has delivered the instance payload.
    Delivered,
}

/// A delivery decided by the engine: the instance, the certified digest
/// and the assembled payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzDelivery {
    /// The delivered broadcast instance.
    pub tag: ByzTag,
    /// Digest the delivery quorum certified.
    pub digest: u64,
    /// The payload matching that digest.
    pub payload: Bytes,
}

/// What the caller must do with an engine result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Flood this frame to all overlay neighbors.
    Gossip(GossipFrame),
    /// Hand this payload to the application, exactly once per instance.
    Deliver(ByzDelivery),
}

/// One node's compact statement about one Bracha instance, served to a
/// rejoining node during catch-up: the phase the serving node reached, the
/// digest it committed to, and the payload when the server still holds it.
///
/// A summary is an *attestation*, not a command: the receiving engine
/// treats it as the serving witness's standing ECHO/READY votes
/// ([`BrachaEngine::ingest_summaries`]), so state only certifies once the
/// regular quorum thresholds are met across **distinct** attesting peers —
/// a lone traitor's forged summary is one voice, f short of every quorum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSummary {
    /// The broadcast instance being summarized.
    pub tag: ByzTag,
    /// Phase the serving node had reached for this instance.
    pub phase: Phase,
    /// Digest the serving node committed to (readied digest when it
    /// readied, else the echoed digest).
    pub digest: u64,
    /// The payload matching `digest` when the server holds it (re-validated
    /// by the ingesting side), empty otherwise.
    pub payload: Bytes,
}

/// Per-instance quorum state.
#[derive(Debug)]
struct Instance {
    /// The membership view snapshotted when this instance was created;
    /// every quorum threshold below reads from it, never from the
    /// engine's (possibly newer) current view.
    view: MembershipView,
    /// Payloads seen for this instance, keyed by their digest.
    payloads: HashMap<u64, Bytes>,
    /// Digest this node echoed, if any (first valid SEND wins).
    echoed: Option<u64>,
    /// Digest this node readied, if any.
    readied: Option<u64>,
    delivered: bool,
    /// Distinct echo witnesses per digest.
    echo_witnesses: HashMap<u64, BTreeSet<u32>>,
    /// Distinct ready witnesses per digest.
    ready_witnesses: HashMap<u64, BTreeSet<u32>>,
}

impl Instance {
    fn new(view: MembershipView) -> Self {
        Instance {
            view,
            payloads: HashMap::new(),
            echoed: None,
            readied: None,
            delivered: false,
            echo_witnesses: HashMap::new(),
            ready_witnesses: HashMap::new(),
        }
    }
}

/// One node's Bracha state across all broadcast instances it has seen.
#[derive(Debug)]
pub struct BrachaEngine {
    me: u32,
    /// The current membership view; snapshotted into each new instance.
    view: MembershipView,
    /// Set while the current view cannot support the traitor budget
    /// (n < 3f+1): new instances are refused until a sound view arrives.
    view_unsafe: bool,
    /// How many broadcasts / incoming instances were refused because the
    /// view was unsafe — the signal the chaos oracle's `QuorumUnsafe`
    /// check reads (via a metrics counter each transport exports).
    unsafe_refusals: u64,
    instances: HashMap<ByzTag, Instance>,
}

impl BrachaEngine {
    /// Engine for node `me` under quorum config `cfg` (view epoch 0).
    #[must_use]
    pub fn new(me: u32, cfg: BrachaConfig) -> Self {
        BrachaEngine {
            me,
            view: MembershipView { epoch: 0, cfg },
            view_unsafe: false,
            unsafe_refusals: 0,
            instances: HashMap::new(),
        }
    }

    /// The node id this engine acts as.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.me
    }

    /// The quorum configuration of the *current* view. In-flight instances
    /// may be running under an older snapshot ([`Self::instance_view`]).
    #[must_use]
    pub fn config(&self) -> BrachaConfig {
        self.view.cfg
    }

    /// The current epoch-stamped membership view.
    #[must_use]
    pub fn view(&self) -> MembershipView {
        self.view
    }

    /// `true` while the current view is too small for the traitor budget
    /// (n < 3f+1) and the engine is refusing new instances.
    #[must_use]
    pub fn view_is_unsafe(&self) -> bool {
        self.view_unsafe
    }

    /// How many broadcasts or incoming instances have been refused under
    /// unsafe views so far.
    #[must_use]
    pub fn unsafe_refusals(&self) -> u64 {
        self.unsafe_refusals
    }

    /// The view snapshot instance `tag` is running under, if it exists.
    #[must_use]
    pub fn instance_view(&self, tag: ByzTag) -> Option<MembershipView> {
        self.instances.get(&tag).map(|i| i.view)
    }

    /// Installs a new membership view with live membership `n`: the epoch
    /// advances unconditionally, in-flight instances keep the view they
    /// snapshotted at creation, and *new* instances will size their
    /// quorums from `n`. The traitor budget `f` is a protocol constant —
    /// it came from the overlay's connectivity k, which healing preserves.
    ///
    /// # Errors
    ///
    /// Returns [`UnsoundMembership`] when `n < 3f + 1`: the view still
    /// advances but is marked unsafe, and the engine refuses to create
    /// instances (originations *and* incoming gossip for unknown tags)
    /// until a sound view is installed. Refusing is the safe failure mode:
    /// a quorum certified by fewer than 3f+1 members can be split by f
    /// traitors.
    pub fn bump_view(&mut self, n: usize) -> Result<MembershipView, UnsoundMembership> {
        self.view.epoch += 1;
        match BrachaConfig::new(n, self.view.cfg.f) {
            Ok(cfg) => {
                self.view.cfg = cfg;
                self.view_unsafe = false;
                Ok(self.view)
            }
            Err(e) => {
                self.view_unsafe = true;
                Err(e)
            }
        }
    }

    /// Phase of instance `tag` at this node.
    #[must_use]
    pub fn phase(&self, tag: ByzTag) -> Phase {
        match self.instances.get(&tag) {
            None => Phase::Init,
            Some(i) if i.delivered => Phase::Delivered,
            Some(i) if i.readied.is_some() => Phase::Readied,
            Some(i) if i.echoed.is_some() => Phase::Echoed,
            Some(_) => Phase::Init,
        }
    }

    /// Originates a broadcast from this node: emits the `SEND` (and the
    /// follow-on `ECHO`, since the origin is its own first witness). The
    /// new instance snapshots the current membership view.
    ///
    /// # Errors
    ///
    /// Returns [`UnsoundMembership`] when the current view is unsafe
    /// (n < 3f+1): originating under it could certify a split delivery, so
    /// the broadcast is refused and counted in [`Self::unsafe_refusals`].
    pub fn broadcast(
        &mut self,
        nonce: u64,
        payload: Bytes,
    ) -> Result<Vec<Action>, UnsoundMembership> {
        if self.view_unsafe {
            self.unsafe_refusals += 1;
            return Err(UnsoundMembership {
                n: self.view.cfg.n,
                f: self.view.cfg.f,
            });
        }
        let tag = ByzTag {
            origin: self.me,
            nonce,
        };
        let send = GossipFrame {
            kind: GossipKind::Send,
            witness: self.me,
            tag,
            digest: digest(&payload),
            payload,
        };
        // The SEND itself must be flooded too — absorb only returns frames
        // the engine *reacts* with (the caller is assumed to have relayed
        // whatever it fed in, which for an origination is this frame).
        let mut out = vec![Action::Gossip(send.clone())];
        out.extend(self.absorb(send));
        Ok(out)
    }

    /// Re-emits this node's standing votes: the `SEND` of every instance it
    /// originated, plus its `ECHO`/`READY` for every instance it voted on.
    /// An anti-entropy pass for lossy links — peers that already hold these
    /// frames absorb them in their dedup sets, peers that missed the
    /// originals gain the lost votes. Instances are visited in tag order so
    /// the emission is deterministic across runs.
    #[must_use]
    pub fn regossip(&self) -> Vec<Action> {
        let mut tags: Vec<ByzTag> = self.instances.keys().copied().collect();
        tags.sort_unstable_by_key(|t| (t.origin, t.nonce));
        let mut out = Vec::new();
        for tag in tags {
            let inst = &self.instances[&tag];
            if tag.origin == self.me {
                if let Some(d) = inst.echoed {
                    if let Some(payload) = inst.payloads.get(&d) {
                        out.push(Action::Gossip(GossipFrame {
                            kind: GossipKind::Send,
                            witness: self.me,
                            tag,
                            digest: d,
                            payload: payload.clone(),
                        }));
                    }
                }
            }
            if let Some(d) = inst.echoed {
                if let Some(payload) = inst.payloads.get(&d) {
                    out.push(Action::Gossip(GossipFrame {
                        kind: GossipKind::Echo,
                        witness: self.me,
                        tag,
                        digest: d,
                        payload: payload.clone(),
                    }));
                }
            }
            if let Some(d) = inst.readied {
                out.push(Action::Gossip(GossipFrame {
                    kind: GossipKind::Ready,
                    witness: self.me,
                    tag,
                    digest: d,
                    payload: Bytes::new(),
                }));
            }
        }
        out
    }

    /// Exports this node's per-instance catch-up summaries, in tag order.
    ///
    /// Only instances this node actually *voted* on (phase ≥ Echoed) are
    /// exported — an instance it merely heard rumors about carries no
    /// attestation worth serving. The digest is the readied digest when one
    /// exists (the stronger commitment), else the echoed one; the payload
    /// rides along when it is still held for that digest.
    #[must_use]
    pub fn summaries(&self) -> Vec<InstanceSummary> {
        let mut tags: Vec<ByzTag> = self.instances.keys().copied().collect();
        tags.sort_unstable_by_key(|t| (t.origin, t.nonce));
        let mut out = Vec::new();
        for tag in tags {
            let inst = &self.instances[&tag];
            let Some(d) = inst.readied.or(inst.echoed) else {
                continue;
            };
            out.push(InstanceSummary {
                tag,
                phase: self.phase(tag),
                digest: d,
                payload: inst.payloads.get(&d).cloned().unwrap_or_default(),
            });
        }
        out
    }

    /// Ingests catch-up summaries served by peer `from`, translating each
    /// into that peer's standing votes: an ECHO when the summary carries a
    /// payload matching its digest (validated by the regular step rules),
    /// and a READY when the peer claims phase ≥ Readied. The votes run
    /// through the normal quorum machinery, so nothing certifies until f+1
    /// distinct peers corroborate a READY (amplification) and 2f+1 back a
    /// delivery — one forged summary set from a traitor moves nothing.
    pub fn ingest_summaries(&mut self, from: u32, items: &[InstanceSummary]) -> Vec<Action> {
        let mut out = Vec::new();
        for item in items {
            if from == self.me || item.phase < Phase::Echoed {
                continue;
            }
            // The peer's standing ECHO. step() re-validates payload-vs-digest
            // and drops mismatches, so a forged payload under a corroborated
            // digest dies here without poisoning the payload table.
            out.extend(self.absorb(GossipFrame {
                kind: GossipKind::Echo,
                witness: from,
                tag: item.tag,
                digest: item.digest,
                payload: item.payload.clone(),
            }));
            if item.phase >= Phase::Readied {
                out.extend(self.absorb(GossipFrame {
                    kind: GossipKind::Ready,
                    witness: from,
                    tag: item.tag,
                    digest: item.digest,
                    payload: Bytes::new(),
                }));
            }
        }
        out
    }

    /// Processes one incoming gossip frame; returns frames to flood and
    /// any delivery it unlocked.
    pub fn on_gossip(&mut self, frame: &GossipFrame) -> Vec<Action> {
        self.absorb(frame.clone())
    }

    /// Runs `first` plus every frame it causes this node to emit, until
    /// the local cascade settles.
    fn absorb(&mut self, first: GossipFrame) -> Vec<Action> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([first]);
        while let Some(frame) = queue.pop_front() {
            for action in self.step(&frame) {
                if let Action::Gossip(f) = &action {
                    queue.push_back(f.clone());
                }
                out.push(action);
            }
        }
        out
    }

    /// Applies a single frame to local state. Emitted gossip is NOT yet
    /// absorbed — [`Self::absorb`] loops it back.
    fn step(&mut self, frame: &GossipFrame) -> Vec<Action> {
        // Validate before touching state.
        let carries_payload = match frame.kind {
            GossipKind::Send => {
                if frame.witness != frame.tag.origin || digest(&frame.payload) != frame.digest {
                    return Vec::new();
                }
                true
            }
            GossipKind::Echo => {
                if digest(&frame.payload) != frame.digest {
                    return Vec::new();
                }
                true
            }
            GossipKind::Ready => false,
        };

        // A frame for an unknown instance creates it under the *current*
        // view — unless that view is unsafe, in which case the frame is
        // refused outright (in-flight instances keep working under their
        // own snapshots).
        if !self.instances.contains_key(&frame.tag) {
            if self.view_unsafe {
                self.unsafe_refusals += 1;
                return Vec::new();
            }
            self.instances.insert(frame.tag, Instance::new(self.view));
        }

        let me = self.me;
        let inst = self
            .instances
            .get_mut(&frame.tag)
            .expect("instance inserted above");
        // Quorum thresholds come from the instance's snapshotted view, not
        // the engine's current one: churn after origination must not move
        // the goalposts of an in-flight quorum count.
        let echo_quorum = inst.view.cfg.echo_quorum();
        let ready_amplify = inst.view.cfg.ready_amplify();
        let delivery_quorum = inst.view.cfg.delivery_quorum();
        if carries_payload {
            inst.payloads
                .entry(frame.digest)
                .or_insert_with(|| frame.payload.clone());
        }
        match frame.kind {
            GossipKind::Send => {}
            GossipKind::Echo => {
                inst.echo_witnesses
                    .entry(frame.digest)
                    .or_default()
                    .insert(frame.witness);
            }
            GossipKind::Ready => {
                inst.ready_witnesses
                    .entry(frame.digest)
                    .or_default()
                    .insert(frame.witness);
            }
        }

        let mut actions = Vec::new();

        // Echo the first valid SEND for this instance.
        if frame.kind == GossipKind::Send && inst.echoed.is_none() {
            inst.echoed = Some(frame.digest);
            actions.push(Action::Gossip(GossipFrame {
                kind: GossipKind::Echo,
                witness: me,
                tag: frame.tag,
                digest: frame.digest,
                payload: frame.payload.clone(),
            }));
        }

        // Ready on echo quorum or ready amplification, once.
        if inst.readied.is_none() {
            let ready_digest = inst
                .echo_witnesses
                .iter()
                .find(|(_, w)| w.len() >= echo_quorum)
                .or_else(|| {
                    inst.ready_witnesses
                        .iter()
                        .find(|(_, w)| w.len() >= ready_amplify)
                })
                .map(|(&d, _)| d);
            if let Some(d) = ready_digest {
                inst.readied = Some(d);
                actions.push(Action::Gossip(GossipFrame {
                    kind: GossipKind::Ready,
                    witness: me,
                    tag: frame.tag,
                    digest: d,
                    payload: Bytes::new(),
                }));
            }
        }

        // Deliver on ready quorum, once, as soon as the payload is known.
        if !inst.delivered {
            let decided = inst
                .ready_witnesses
                .iter()
                .find(|(_, w)| w.len() >= delivery_quorum)
                .map(|(&d, _)| d);
            if let Some(d) = decided {
                if let Some(payload) = inst.payloads.get(&d) {
                    inst.delivered = true;
                    actions.push(Action::Deliver(ByzDelivery {
                        tag: frame.tag,
                        digest: d,
                        payload: payload.clone(),
                    }));
                }
            }
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrachaConfig {
        BrachaConfig::new(8, 1).unwrap() // echo quorum 5, amplify 2, deliver 3
    }

    fn tag(origin: u32, nonce: u64) -> ByzTag {
        ByzTag { origin, nonce }
    }

    fn gossip_of(actions: &[Action]) -> Vec<&GossipFrame> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Gossip(f) => Some(f),
                Action::Deliver(_) => None,
            })
            .collect()
    }

    fn deliveries_of(actions: &[Action]) -> Vec<&ByzDelivery> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(d) => Some(d),
                Action::Gossip(_) => None,
            })
            .collect()
    }

    /// Drives a full correct-node mesh: every emitted frame is handed to
    /// every other engine until quiescence. Returns deliveries per node.
    fn run_mesh(
        engines: &mut [BrachaEngine],
        initial: Vec<(usize, GossipFrame)>,
    ) -> Vec<Vec<ByzDelivery>> {
        let n = engines.len();
        let mut delivered: Vec<Vec<ByzDelivery>> = vec![Vec::new(); n];
        // (recipient, frame) work queue; sender's own absorption already done.
        let mut queue: VecDeque<(usize, GossipFrame)> = initial.into();
        while let Some((to, frame)) = queue.pop_front() {
            for action in engines[to].on_gossip(&frame) {
                match action {
                    Action::Gossip(f) => {
                        for peer in 0..n {
                            if peer != to {
                                queue.push_back((peer, f.clone()));
                            }
                        }
                    }
                    Action::Deliver(d) => delivered[to].push(d),
                }
            }
        }
        delivered
    }

    #[test]
    fn origin_broadcast_emits_send_and_echo() {
        let mut e = BrachaEngine::new(0, cfg());
        let actions = e.broadcast(7, Bytes::from_static(b"hi")).unwrap();
        let gossip = gossip_of(&actions);
        assert_eq!(gossip.len(), 2);
        assert_eq!(gossip[0].kind, GossipKind::Send);
        assert_eq!(gossip[1].kind, GossipKind::Echo);
        assert!(deliveries_of(&actions).is_empty());
        assert_eq!(e.phase(tag(0, 7)), Phase::Echoed);
    }

    #[test]
    fn all_correct_mesh_delivers_exactly_once_everywhere() {
        let n = 8;
        let mut engines: Vec<BrachaEngine> =
            (0..n as u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let payload = Bytes::from_static(b"agreed value");
        let mut initial = Vec::new();
        let mut origin_delivered = Vec::new();
        for action in engines[0].broadcast(1, payload.clone()).unwrap() {
            match action {
                Action::Gossip(f) => {
                    for peer in 1..n {
                        initial.push((peer, f.clone()));
                    }
                }
                Action::Deliver(d) => origin_delivered.push(d),
            }
        }
        let mut delivered = run_mesh(&mut engines, initial);
        delivered[0].extend(origin_delivered);
        for (v, d) in delivered.iter().enumerate() {
            assert_eq!(d.len(), 1, "node {v} delivers exactly once");
            assert_eq!(d[0].payload, payload);
            assert_eq!(d[0].tag, tag(0, 1));
        }
        for e in &engines {
            assert_eq!(e.phase(tag(0, 1)), Phase::Delivered);
        }
    }

    #[test]
    fn empty_payload_broadcast_still_delivers() {
        let n = 8;
        let mut engines: Vec<BrachaEngine> =
            (0..n as u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let mut initial = Vec::new();
        for action in engines[3].broadcast(9, Bytes::new()).unwrap() {
            if let Action::Gossip(f) = action {
                for peer in 0..n {
                    if peer != 3 {
                        initial.push((peer, f.clone()));
                    }
                }
            }
        }
        let delivered = run_mesh(&mut engines, initial);
        for (v, d) in delivered.iter().enumerate() {
            if v != 3 {
                assert_eq!(d.len(), 1, "node {v}");
                assert!(d[0].payload.is_empty());
            }
        }
    }

    #[test]
    fn equivocating_origin_cannot_split_correct_nodes() {
        // n=8, f=1: node 7 is the traitor origin, sending payload A to
        // engines 0..3 and payload B to engines 3..7. At most one digest
        // can gather the echo quorum of 5 among 7 correct nodes — so no
        // two correct nodes may deliver different payloads.
        let mut engines: Vec<BrachaEngine> =
            (0..7u32).map(|v| BrachaEngine::new(v, cfg())).collect();
        let t = tag(7, 1);
        let mk = |payload: &'static [u8]| GossipFrame {
            kind: GossipKind::Send,
            witness: 7,
            tag: t,
            digest: digest(payload),
            payload: Bytes::from_static(payload),
        };
        let mut initial = Vec::new();
        for peer in 0..3 {
            initial.push((peer, mk(b"A")));
        }
        for peer in 3..7 {
            initial.push((peer, mk(b"B")));
        }
        let delivered = run_mesh(&mut engines, initial);
        let digests: BTreeSet<u64> = delivered.iter().flatten().map(|d| d.digest).collect();
        assert!(
            digests.len() <= 1,
            "agreement: at most one digest delivered"
        );
        // Totality: if any correct node delivered, all did.
        let any = delivered.iter().any(|d| !d.is_empty());
        if any {
            assert!(delivered.iter().all(|d| d.len() == 1));
        }
    }

    #[test]
    fn forged_send_impersonating_correct_origin_is_dropped() {
        let mut e = BrachaEngine::new(1, cfg());
        let forged = GossipFrame {
            kind: GossipKind::Send,
            witness: 5,     // traitor vouching...
            tag: tag(0, 1), // ...for an instance it claims node 0 originated
            digest: digest(b"fake"),
            payload: Bytes::from_static(b"fake"),
        };
        assert!(e.on_gossip(&forged).is_empty());
        assert_eq!(e.phase(tag(0, 1)), Phase::Init);
    }

    #[test]
    fn digest_mismatch_is_dropped() {
        let mut e = BrachaEngine::new(1, cfg());
        let bad = GossipFrame {
            kind: GossipKind::Echo,
            witness: 2,
            tag: tag(0, 1),
            digest: 0xdead,
            payload: Bytes::from_static(b"does not hash to 0xdead"),
        };
        assert!(e.on_gossip(&bad).is_empty());
    }

    #[test]
    fn duplicate_witness_votes_count_once() {
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let ready = |w: u32| GossipFrame {
            kind: GossipKind::Ready,
            witness: w,
            tag: t,
            digest: 42,
            payload: Bytes::new(),
        };
        // The same witness readying twice must not amplify (threshold 2).
        assert!(e.on_gossip(&ready(3)).is_empty());
        assert!(e.on_gossip(&ready(3)).is_empty());
        assert_eq!(e.phase(t), Phase::Init);
        // A second distinct witness does.
        let actions = e.on_gossip(&ready(4));
        let gossip = gossip_of(&actions);
        assert_eq!(gossip.len(), 1);
        assert_eq!(gossip[0].kind, GossipKind::Ready);
        assert_eq!(e.phase(t), Phase::Readied);
    }

    #[test]
    fn delivery_waits_for_payload_then_fires_on_arrival() {
        // Readys can outrun the payload: the node must hold delivery until
        // an ECHO carrying the payload arrives, then deliver immediately.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let payload = Bytes::from_static(b"late payload");
        let d = digest(&payload);
        for w in 0..3u32 {
            let ready = GossipFrame {
                kind: GossipKind::Ready,
                witness: w,
                tag: t,
                digest: d,
                payload: Bytes::new(),
            };
            assert!(deliveries_of(&e.on_gossip(&ready)).is_empty());
        }
        assert_eq!(e.phase(t), Phase::Readied, "readied but cannot deliver yet");
        let echo = GossipFrame {
            kind: GossipKind::Echo,
            witness: 3,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let actions = e.on_gossip(&echo);
        let delivered = deliveries_of(&actions);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, payload);
        assert_eq!(e.phase(t), Phase::Delivered);
    }

    #[test]
    fn over_bound_collusion_forges_a_delivery() {
        // Bound tightness: the protocol is configured for f=1 (delivery
        // quorum 3), but THREE traitors collude — witnesses 2, 3, 4 all
        // echo and ready a forged instance claiming origin 0. The victim
        // accumulates 3 ready witnesses plus the payload, and delivers a
        // broadcast node 0 never sent. This is exactly what the chaos
        // oracle's Integrity check fires on.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 0xF000);
        let payload = Bytes::from_static(b"forged");
        let d = digest(&payload);
        let mut delivered = Vec::new();
        for w in [2u32, 3, 4] {
            let echo = GossipFrame {
                kind: GossipKind::Echo,
                witness: w,
                tag: t,
                digest: d,
                payload: payload.clone(),
            };
            let ready = GossipFrame {
                kind: GossipKind::Ready,
                witness: w,
                tag: t,
                digest: d,
                payload: Bytes::new(),
            };
            for a in e.on_gossip(&echo).into_iter().chain(e.on_gossip(&ready)) {
                if let Action::Deliver(del) = a {
                    delivered.push(del);
                }
            }
        }
        assert_eq!(delivered.len(), 1, "victim delivers the forged instance");
        assert_eq!(delivered[0].tag, t);
        // Under the bound (a single traitor) the same attack goes nowhere:
        let mut e2 = BrachaEngine::new(6, cfg());
        let echo = GossipFrame {
            kind: GossipKind::Echo,
            witness: 2,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let ready = GossipFrame {
            kind: GossipKind::Ready,
            witness: 2,
            tag: t,
            digest: d,
            payload: Bytes::new(),
        };
        assert!(e2.on_gossip(&echo).is_empty());
        assert!(deliveries_of(&e2.on_gossip(&ready)).is_empty());
        assert_ne!(e2.phase(t), Phase::Delivered);
    }

    #[test]
    fn instances_snapshot_the_view_at_creation_and_never_mix() {
        let mut e = BrachaEngine::new(0, cfg());
        assert_eq!(e.view().epoch, 0);
        let _ = e.broadcast(1, Bytes::from_static(b"pre-churn")).unwrap();
        let before = e.instance_view(tag(0, 1)).unwrap();
        assert_eq!((before.epoch, before.cfg.n), (0, 8));

        // A member crashes: the view bumps to n=7, but the in-flight
        // instance keeps its origin snapshot.
        e.bump_view(7).unwrap();
        assert_eq!(e.view().epoch, 1);
        assert_eq!(e.view().cfg.n, 7);
        let still = e.instance_view(tag(0, 1)).unwrap();
        assert_eq!((still.epoch, still.cfg.n), (0, 8), "in-flight view frozen");

        // A new instance created after the bump sizes from the live view.
        let _ = e.broadcast(2, Bytes::from_static(b"post-churn")).unwrap();
        let after = e.instance_view(tag(0, 2)).unwrap();
        assert_eq!((after.epoch, after.cfg.n), (1, 7));
    }

    #[test]
    fn in_flight_instance_keeps_its_quorum_thresholds_across_a_bump() {
        // n=8 (delivery quorum 3). After bumping to a larger view the old
        // instance must still deliver at 3 readys — its snapshot — even
        // though the new view would also say 3; the *echo* quorum differs:
        // old 5 vs new ⌈(12+1+1)/2⌉ = 7, so certify via 5 echoes to prove
        // the snapshot is the one being read.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let payload = Bytes::from_static(b"frozen view");
        let d = digest(&payload);
        let send = GossipFrame {
            kind: GossipKind::Send,
            witness: 0,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let _ = e.on_gossip(&send); // instance created at n=8
        e.bump_view(12).unwrap(); // view grows; instance must not care
        let mut actions = Vec::new();
        for w in 0..5u32 {
            let echo = GossipFrame {
                kind: GossipKind::Echo,
                witness: w,
                tag: t,
                digest: d,
                payload: payload.clone(),
            };
            actions.extend(e.on_gossip(&echo));
        }
        // 5 echo witnesses meet the snapshotted quorum of 5 → READY fires.
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Gossip(f) if f.kind == GossipKind::Ready)),
            "snapshot echo quorum (5) certified, not the current view's (7)"
        );
    }

    #[test]
    fn unsafe_view_refuses_new_instances_but_in_flight_deliver() {
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let payload = Bytes::from_static(b"survives the dip");
        let d = digest(&payload);
        let echo = |w: u32| GossipFrame {
            kind: GossipKind::Echo,
            witness: w,
            tag: t,
            digest: d,
            payload: payload.clone(),
        };
        let ready = |w: u32| GossipFrame {
            kind: GossipKind::Ready,
            witness: w,
            tag: t,
            digest: d,
            payload: Bytes::new(),
        };
        let _ = e.on_gossip(&echo(0)); // instance exists at epoch 0
        assert!(e.bump_view(3).is_err(), "3 < 3f+1 = 4");
        assert!(e.view_is_unsafe());
        assert_eq!(e.view().epoch, 1, "epoch advances even on refusal");

        // Originating is refused and surfaced as an error...
        assert!(e.broadcast(9, Bytes::new()).is_err());
        // ...and gossip for an unknown tag is dropped without state.
        let forged = GossipFrame {
            kind: GossipKind::Ready,
            witness: 2,
            tag: tag(5, 5),
            digest: 42,
            payload: Bytes::new(),
        };
        assert!(e.on_gossip(&forged).is_empty());
        assert_eq!(e.phase(tag(5, 5)), Phase::Init);
        assert_eq!(e.unsafe_refusals(), 2);

        // The in-flight instance still runs under its safe snapshot.
        let mut delivered = Vec::new();
        for w in [1u32, 2, 3] {
            for a in e.on_gossip(&ready(w)) {
                if let Action::Deliver(del) = a {
                    delivered.push(del);
                }
            }
        }
        assert_eq!(delivered.len(), 1, "pre-dip instance delivers");

        // A sound view restores service.
        e.bump_view(4).unwrap();
        assert!(!e.view_is_unsafe());
        assert!(e.broadcast(9, Bytes::new()).is_ok());
    }

    #[test]
    fn summaries_export_voted_instances_in_tag_order() {
        let mut e = BrachaEngine::new(0, cfg());
        let _ = e.broadcast(2, Bytes::from_static(b"two")).unwrap();
        let _ = e.broadcast(1, Bytes::from_static(b"one")).unwrap();
        // An instance it only heard a READY rumor about is not exported.
        let _ = e.on_gossip(&GossipFrame {
            kind: GossipKind::Ready,
            witness: 4,
            tag: tag(3, 9),
            digest: 42,
            payload: Bytes::new(),
        });
        let s = e.summaries();
        assert_eq!(s.len(), 2, "rumor-only instance not exported");
        assert_eq!(s[0].tag, tag(0, 1));
        assert_eq!(s[1].tag, tag(0, 2));
        assert_eq!(s[0].phase, Phase::Echoed);
        assert_eq!(s[0].digest, digest(b"one"));
        assert_eq!(s[0].payload, Bytes::from_static(b"one"));
    }

    #[test]
    fn corroborated_summaries_deliver_a_missed_instance() {
        // A rejoiner at n=8, f=1 ingests summaries from 3 = 2f+1 distinct
        // correct peers, all attesting Delivered on the same digest. Their
        // READY votes meet the delivery quorum and the payload arrives via
        // their ECHOs — the rejoiner converges without any live gossip.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 1);
        let payload = Bytes::from_static(b"missed while dead");
        let item = InstanceSummary {
            tag: t,
            phase: Phase::Delivered,
            digest: digest(&payload),
            payload: payload.clone(),
        };
        let mut delivered = Vec::new();
        for peer in [0u32, 1, 2] {
            for a in e.ingest_summaries(peer, std::slice::from_ref(&item)) {
                if let Action::Deliver(d) = a {
                    delivered.push(d);
                }
            }
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, payload);
        assert_eq!(e.phase(t), Phase::Delivered);
        // Re-ingesting the same peers' summaries is idempotent.
        assert!(e
            .ingest_summaries(0, std::slice::from_ref(&item))
            .is_empty());
    }

    #[test]
    fn forged_summary_from_one_traitor_moves_nothing() {
        // A lone traitor serves a summary claiming a fabricated instance
        // was Delivered. That is one ECHO + one READY vote — f short of
        // amplification, 2f short of delivery. The rejoiner must neither
        // ready nor deliver it, and a digest-mismatched payload must not
        // even enter the payload table.
        let mut e = BrachaEngine::new(6, cfg());
        let t = tag(0, 0xF00D);
        let forged = InstanceSummary {
            tag: t,
            phase: Phase::Delivered,
            digest: digest(b"the majority never saw this"),
            payload: Bytes::from_static(b"the majority never saw this"),
        };
        let actions = e.ingest_summaries(5, std::slice::from_ref(&forged));
        assert!(deliveries_of(&actions).is_empty());
        assert_eq!(e.phase(t), Phase::Init, "one vote certifies nothing");

        // A mismatched payload under an honest-looking digest is dropped at
        // validation: only the READY vote lands.
        let lying = InstanceSummary {
            tag: tag(0, 0xBEEF),
            phase: Phase::Delivered,
            digest: digest(b"real value"),
            payload: Bytes::from_static(b"swapped value"),
        };
        let actions = e.ingest_summaries(5, std::slice::from_ref(&lying));
        assert!(deliveries_of(&actions).is_empty());
        assert_eq!(e.phase(tag(0, 0xBEEF)), Phase::Init);
    }

    #[test]
    fn summary_ingest_respects_unsafe_views() {
        let mut e = BrachaEngine::new(6, cfg());
        assert!(e.bump_view(3).is_err());
        let item = InstanceSummary {
            tag: tag(0, 1),
            phase: Phase::Delivered,
            digest: digest(b"x"),
            payload: Bytes::from_static(b"x"),
        };
        assert!(e
            .ingest_summaries(1, std::slice::from_ref(&item))
            .is_empty());
        assert_eq!(e.phase(tag(0, 1)), Phase::Init, "unsafe view refuses");
        assert!(e.unsafe_refusals() > 0);
    }

    #[test]
    fn regossip_reemits_standing_votes_deterministically() {
        let mut e = BrachaEngine::new(0, cfg());
        let _ = e.broadcast(1, Bytes::from_static(b"mine")).unwrap();
        let first = e.regossip();
        // Origin re-emits its SEND and its ECHO for the instance.
        assert!(first
            .iter()
            .any(|a| matches!(a, Action::Gossip(f) if f.kind == GossipKind::Send)));
        assert!(first
            .iter()
            .any(|a| matches!(a, Action::Gossip(f) if f.kind == GossipKind::Echo)));
        assert!(
            !first
                .iter()
                .any(|a| matches!(a, Action::Gossip(f) if f.kind == GossipKind::Ready)),
            "no ready vote standing yet"
        );
        assert_eq!(first, e.regossip(), "emission is deterministic");

        // Once readied, the READY vote is re-emitted too.
        let t = tag(0, 1);
        let d = e.regossip().iter().find_map(|a| match a {
            Action::Gossip(f) if f.kind == GossipKind::Send => Some(f.digest),
            _ => None,
        });
        let d = d.unwrap();
        for w in [2u32, 3] {
            let _ = e.on_gossip(&GossipFrame {
                kind: GossipKind::Ready,
                witness: w,
                tag: t,
                digest: d,
                payload: Bytes::new(),
            });
        }
        assert!(e
            .regossip()
            .iter()
            .any(|a| matches!(a, Action::Gossip(f) if f.kind == GossipKind::Ready)));
    }
}
