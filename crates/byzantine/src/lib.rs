//! # lhg-byzantine
//!
//! Bracha echo/ready Byzantine reliable broadcast over LHG overlays —
//! tolerating nodes that *lie*, not just nodes that crash.
//!
//! The paper's central property — an LHG on n nodes is k-connected, so
//! Menger gives k vertex-disjoint paths between any pair — is exactly the
//! redundancy Byzantine broadcast needs: with at most
//! f ≤ ⌊(k−1)/2⌋ traitors, every pair of correct nodes keeps
//! k − f ≥ f + 1 traitor-free disjoint paths, so gossip among correct
//! nodes is never cut and quorum messages always get through.
//!
//! The protocol is Bracha's (1987) echo/ready broadcast, run as gossip
//! over the LHG overlay:
//!
//! 1. the origin floods `SEND(payload)` for instance `(origin, nonce)`;
//! 2. a correct node echoes the first `SEND` it sees per instance:
//!    `ECHO(digest, payload)`;
//! 3. on ⌈(n+f+1)/2⌉ distinct echo witnesses — or f+1 distinct ready
//!    witnesses (amplification) — it emits `READY(digest)`;
//! 4. on 2f+1 distinct ready witnesses it delivers, exactly once.
//!
//! Every step is a per-broadcast quorum state machine
//! (init → echoed → readied → delivered, [`engine::Phase`]). Frame
//! identity is "signed-enough": each gossip frame carries its witness and
//! the instance tag ([`lhg_net::message::ByzTag`]) in a backward-compatible
//! wire extension, and the model assumes correct nodes' attributions cannot
//! be forged — traitors may equivocate, forge *instances*, stay silent, or
//! replay, but only under their own witness identity.
//!
//! * [`frame`] — gossip frame codec over [`lhg_net::message::Message`]
//!   and the FNV payload digest;
//! * [`engine`] — the network-agnostic quorum state machine
//!   ([`engine::BrachaEngine`]): feed gossip in, get gossip + deliveries
//!   out; shared verbatim by all three engines;
//! * [`sim`] — [`sim::ByzantineFlooder`] for the discrete-event simulator,
//!   plus seeded traitor processes ([`sim::ByzantineTraitor`]);
//! * [`threaded`] — the same protocol on real OS threads.
//!
//! The TCP runtime integration lives in `lhg-runtime` (which depends on
//! this crate), and the adversarial chaos family in `lhg-chaos`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod sim;
pub mod threaded;

pub use engine::{Action, BrachaEngine, ByzDelivery, Phase};
pub use frame::{digest, gossip_frame_id, GossipFrame, GossipKind, BYZ_ID_TAG};
pub use sim::{
    run_sim_byzantine, run_sim_byzantine_with_metrics, ByzantineFlooder, ByzantineTraitor,
    ScheduledByzBroadcast, TraitorBehavior, EQUIVOCATE_NONCE_BASE, FORGE_NONCE_BASE,
};
pub use threaded::{run_threaded_byzantine, ThreadedByzReport};

/// Maximum traitors a k-connected overlay supports with Bracha broadcast:
/// f ≤ ⌊(k−1)/2⌋.
///
/// Derivation: removing the f traitors must leave the correct subgraph
/// connected (needs f ≤ k−1), *and* every correct pair must keep more
/// traitor-free disjoint paths than traitor-blocked ones — of the k
/// vertex-disjoint paths Menger guarantees, at most f pass through a
/// traitor, so k − f ≥ f + 1, i.e. f ≤ ⌊(k−1)/2⌋ (the stricter bound).
#[must_use]
pub fn max_traitors(k: usize) -> usize {
    k.saturating_sub(1) / 2
}

/// Quorum parameters of one Bracha instance: total membership `n` and the
/// traitor budget `f` the protocol is configured to survive.
///
/// Soundness needs n ≥ 3f + 1 (asserted); with LHG overlays at
/// f = [`max_traitors`]`(k)` this holds for every constructible size,
/// since an LHG needs n ≥ 2k ≥ 4f + 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrachaConfig {
    /// Total membership size (correct + traitor).
    pub n: usize,
    /// Traitor budget the quorums are sized for.
    pub f: usize,
}

impl BrachaConfig {
    /// Creates a config; panics if `n < 3f + 1` (quorums would be unsound).
    ///
    /// # Panics
    ///
    /// Panics when `n < 3f + 1`.
    #[must_use]
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n > 3 * f, "Bracha needs n ≥ 3f+1 (n={n}, f={f})");
        BrachaConfig { n, f }
    }

    /// Config for an n-node, k-connected LHG overlay at the full traitor
    /// budget f = ⌊(k−1)/2⌋.
    ///
    /// # Panics
    ///
    /// Panics when `n < 3f + 1`.
    #[must_use]
    pub fn for_overlay(n: usize, k: usize) -> Self {
        BrachaConfig::new(n, max_traitors(k))
    }

    /// Echo quorum ⌈(n+f+1)/2⌉: two echo quorums intersect in at least
    /// f+1 nodes, hence in a correct node — so no two digests of one
    /// instance can both be echo-certified.
    #[must_use]
    pub fn echo_quorum(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// Ready amplification threshold f+1: among f+1 distinct ready
    /// witnesses at least one is correct, so readying on its word is safe.
    #[must_use]
    pub fn ready_amplify(&self) -> usize {
        self.f + 1
    }

    /// Delivery quorum 2f+1: at least f+1 correct witnesses readied, so
    /// by amplification every correct node eventually readies — delivery
    /// is total among correct nodes.
    #[must_use]
    pub fn delivery_quorum(&self) -> usize {
        2 * self.f + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traitor_bound_follows_connectivity() {
        assert_eq!(max_traitors(1), 0);
        assert_eq!(max_traitors(2), 0);
        assert_eq!(max_traitors(3), 1);
        assert_eq!(max_traitors(4), 1);
        assert_eq!(max_traitors(5), 2);
        assert_eq!(max_traitors(7), 3);
    }

    #[test]
    fn quorum_sizes_at_small_memberships() {
        let c = BrachaConfig::new(8, 1);
        assert_eq!(c.echo_quorum(), 5);
        assert_eq!(c.ready_amplify(), 2);
        assert_eq!(c.delivery_quorum(), 3);

        let c = BrachaConfig::new(4, 1);
        assert_eq!(c.echo_quorum(), 3);
        assert_eq!(c.delivery_quorum(), 3);
    }

    #[test]
    fn echo_quorums_intersect_in_a_correct_node() {
        for n in 4..=40 {
            for f in 0..=(n - 1) / 3 {
                let c = BrachaConfig::new(n, f);
                let q = c.echo_quorum();
                // Two quorums overlap in ≥ 2q − n nodes; that overlap must
                // exceed f so it contains a correct node.
                assert!(2 * q > n + f, "n={n} f={f}");
                // And a quorum must be reachable with all traitors silent.
                assert!(n - f >= q, "n={n} f={f}: correct nodes can echo-certify");
            }
        }
    }

    #[test]
    #[should_panic(expected = "n ≥ 3f+1")]
    fn unsound_membership_is_rejected() {
        let _ = BrachaConfig::new(6, 2);
    }
}
