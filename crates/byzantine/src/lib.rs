//! # lhg-byzantine
//!
//! Bracha echo/ready Byzantine reliable broadcast over LHG overlays —
//! tolerating nodes that *lie*, not just nodes that crash.
//!
//! The paper's central property — an LHG on n nodes is k-connected, so
//! Menger gives k vertex-disjoint paths between any pair — is exactly the
//! redundancy Byzantine broadcast needs: with at most
//! f ≤ ⌊(k−1)/2⌋ traitors, every pair of correct nodes keeps
//! k − f ≥ f + 1 traitor-free disjoint paths, so gossip among correct
//! nodes is never cut and quorum messages always get through.
//!
//! The protocol is Bracha's (1987) echo/ready broadcast, run as gossip
//! over the LHG overlay:
//!
//! 1. the origin floods `SEND(payload)` for instance `(origin, nonce)`;
//! 2. a correct node echoes the first `SEND` it sees per instance:
//!    `ECHO(digest, payload)`;
//! 3. on ⌈(n+f+1)/2⌉ distinct echo witnesses — or f+1 distinct ready
//!    witnesses (amplification) — it emits `READY(digest)`;
//! 4. on 2f+1 distinct ready witnesses it delivers, exactly once.
//!
//! Every step is a per-broadcast quorum state machine
//! (init → echoed → readied → delivered, [`engine::Phase`]). Frame
//! identity is "signed-enough": each gossip frame carries its witness and
//! the instance tag ([`lhg_net::message::ByzTag`]) in a backward-compatible
//! wire extension, and the model assumes correct nodes' attributions cannot
//! be forged — traitors may equivocate, forge *instances*, stay silent, or
//! replay, but only under their own witness identity.
//!
//! * [`frame`] — gossip frame codec over [`lhg_net::message::Message`]
//!   and the FNV payload digest;
//! * [`engine`] — the network-agnostic quorum state machine
//!   ([`engine::BrachaEngine`]): feed gossip in, get gossip + deliveries
//!   out; shared verbatim by all three engines;
//! * [`sim`] — [`sim::ByzantineFlooder`] for the discrete-event simulator,
//!   plus seeded traitor processes ([`sim::ByzantineTraitor`]);
//! * [`threaded`] — the same protocol on real OS threads.
//!
//! The TCP runtime integration lives in `lhg-runtime` (which depends on
//! this crate), and the adversarial chaos family in `lhg-chaos`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod sim;
pub mod threaded;

pub use engine::{Action, BrachaEngine, ByzDelivery, InstanceSummary, MembershipView, Phase};
pub use frame::{
    decode_summaries, digest, encode_summaries, gossip_frame_id, CatchupPull, CatchupPush,
    GossipFrame, GossipKind, BYZ_ID_TAG, CATCHUP_NONCE_BASE,
};
pub use sim::{
    run_sim_byzantine, run_sim_byzantine_churn, run_sim_byzantine_with_metrics, ByzCrash,
    ByzantineFlooder, ByzantineTraitor, ScheduledByzBroadcast, TraitorBehavior,
    EQUIVOCATE_NONCE_BASE, FORGE_NONCE_BASE,
};
pub use threaded::{run_threaded_byzantine, ThreadedByzReport};

/// Membership too small for the configured traitor budget: Bracha's quorum
/// intersection arguments need `n ≥ 3f + 1`, and this view does not have it.
///
/// Returned (never panicked) by [`BrachaConfig::new`] and
/// [`BrachaEngine::bump_view`](engine::BrachaEngine::bump_view) so callers —
/// the CLI, the chaos runner, a node applying churn — can refuse the view
/// gracefully instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsoundMembership {
    /// The offered membership size.
    pub n: usize,
    /// The traitor budget it cannot support.
    pub f: usize,
}

impl std::fmt::Display for UnsoundMembership {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fmt, "Bracha needs n ≥ 3f+1 (n={}, f={})", self.n, self.f)
    }
}

impl std::error::Error for UnsoundMembership {}

/// Maximum traitors a k-connected overlay supports with Bracha broadcast:
/// f ≤ ⌊(k−1)/2⌋.
///
/// Derivation: removing the f traitors must leave the correct subgraph
/// connected (needs f ≤ k−1), *and* every correct pair must keep more
/// traitor-free disjoint paths than traitor-blocked ones — of the k
/// vertex-disjoint paths Menger guarantees, at most f pass through a
/// traitor, so k − f ≥ f + 1, i.e. f ≤ ⌊(k−1)/2⌋ (the stricter bound).
#[must_use]
pub fn max_traitors(k: usize) -> usize {
    k.saturating_sub(1) / 2
}

/// Quorum parameters of one Bracha instance: total membership `n` and the
/// traitor budget `f` the protocol is configured to survive.
///
/// Soundness needs n ≥ 3f + 1 (enforced by the constructor); with LHG
/// overlays at f = [`max_traitors`]`(k)` this holds for every constructible
/// size, since an LHG needs n ≥ 2k ≥ 4f + 2 — but *churned* views can lose
/// members, so the check is a recoverable [`UnsoundMembership`] error, not
/// an assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrachaConfig {
    /// Total membership size (correct + traitor).
    pub n: usize,
    /// Traitor budget the quorums are sized for.
    pub f: usize,
}

impl BrachaConfig {
    /// Creates a config, refusing unsound memberships.
    ///
    /// # Errors
    ///
    /// Returns [`UnsoundMembership`] when `n < 3f + 1` — the quorum
    /// intersection arguments would not hold.
    pub fn new(n: usize, f: usize) -> Result<Self, UnsoundMembership> {
        if n > 3 * f {
            Ok(BrachaConfig { n, f })
        } else {
            Err(UnsoundMembership { n, f })
        }
    }

    /// Config for an n-node, k-connected LHG overlay at the full traitor
    /// budget f = ⌊(k−1)/2⌋.
    ///
    /// # Errors
    ///
    /// Returns [`UnsoundMembership`] when `n < 3f + 1`.
    pub fn for_overlay(n: usize, k: usize) -> Result<Self, UnsoundMembership> {
        BrachaConfig::new(n, max_traitors(k))
    }

    /// Echo quorum ⌈(n+f+1)/2⌉: two echo quorums intersect in at least
    /// f+1 nodes, hence in a correct node — so no two digests of one
    /// instance can both be echo-certified.
    #[must_use]
    pub fn echo_quorum(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// Ready amplification threshold f+1: among f+1 distinct ready
    /// witnesses at least one is correct, so readying on its word is safe.
    #[must_use]
    pub fn ready_amplify(&self) -> usize {
        self.f + 1
    }

    /// Delivery quorum 2f+1: at least f+1 correct witnesses readied, so
    /// by amplification every correct node eventually readies — delivery
    /// is total among correct nodes.
    #[must_use]
    pub fn delivery_quorum(&self) -> usize {
        2 * self.f + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traitor_bound_follows_connectivity() {
        assert_eq!(max_traitors(1), 0);
        assert_eq!(max_traitors(2), 0);
        assert_eq!(max_traitors(3), 1);
        assert_eq!(max_traitors(4), 1);
        assert_eq!(max_traitors(5), 2);
        assert_eq!(max_traitors(7), 3);
    }

    #[test]
    fn quorum_sizes_at_small_memberships() {
        let c = BrachaConfig::new(8, 1).unwrap();
        assert_eq!(c.echo_quorum(), 5);
        assert_eq!(c.ready_amplify(), 2);
        assert_eq!(c.delivery_quorum(), 3);

        let c = BrachaConfig::new(4, 1).unwrap();
        assert_eq!(c.echo_quorum(), 3);
        assert_eq!(c.delivery_quorum(), 3);
    }

    #[test]
    fn echo_quorums_intersect_in_a_correct_node() {
        for n in 4..=40 {
            for f in 0..=(n - 1) / 3 {
                let c = BrachaConfig::new(n, f).unwrap();
                let q = c.echo_quorum();
                // Two quorums overlap in ≥ 2q − n nodes; that overlap must
                // exceed f so it contains a correct node.
                assert!(2 * q > n + f, "n={n} f={f}");
                // And a quorum must be reachable with all traitors silent.
                assert!(n - f >= q, "n={n} f={f}: correct nodes can echo-certify");
            }
        }
    }

    #[test]
    fn unsound_membership_is_an_error_not_a_panic() {
        let e = BrachaConfig::new(6, 2).unwrap_err();
        assert_eq!(e, UnsoundMembership { n: 6, f: 2 });
        assert!(e.to_string().contains("n ≥ 3f+1"), "{e}");
    }

    #[test]
    fn soundness_boundary_is_exactly_3f_plus_1() {
        for f in 0..12 {
            assert!(BrachaConfig::new(3 * f + 1, f).is_ok(), "n=3f+1 is sound");
            if f > 0 {
                assert!(BrachaConfig::new(3 * f, f).is_err(), "n=3f is not");
            }
        }
    }

    mod quorum_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quorum sizes are monotone in n at fixed f: growing the view
            /// never shrinks a quorum, so a bumped-up view is never easier
            /// to certify against than the one an instance snapshotted.
            #[test]
            fn quorums_monotone_in_n(f in 0usize..8, extra in 0usize..40) {
                let n = 3 * f + 1 + extra; // always sound: n ≥ 3f+1
                let c = BrachaConfig::new(n, f).unwrap();
                let bigger = BrachaConfig::new(n + 1, f).unwrap();
                prop_assert!(bigger.echo_quorum() >= c.echo_quorum());
                prop_assert!(bigger.ready_amplify() >= c.ready_amplify());
                prop_assert!(bigger.delivery_quorum() >= c.delivery_quorum());
            }

            /// Delivery never needs fewer than 2f+1 ready witnesses, at any
            /// sound membership down to the n = 3f+1 boundary.
            #[test]
            fn delivery_never_below_2f_plus_1(f in 0usize..8, extra in 0usize..40) {
                let n = 3 * f + 1 + extra; // always sound: n ≥ 3f+1
                let c = BrachaConfig::new(n, f).unwrap();
                prop_assert!(c.delivery_quorum() > 2 * f);
                // And it stays reachable with every traitor silent.
                prop_assert!(n - f >= c.delivery_quorum());
            }

            /// The constructor and the boundary agree for every (n, f).
            #[test]
            fn constructor_matches_boundary(f in 0usize..20, n in 0usize..80) {
                prop_assert_eq!(BrachaConfig::new(n, f).is_ok(), n > 3 * f);
            }
        }
    }
}
