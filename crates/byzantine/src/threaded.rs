//! Bracha broadcast on real OS threads — the same [`BrachaEngine`] the
//! simulator uses, under genuine concurrency.
//!
//! One thread per node, one unbounded crossbeam channel per node, frames
//! crossing every edge through the length-prefixed wire codec (so the byz
//! extension is exercised on every hop). Termination is by idle timeout,
//! like [`lhg_net::threaded::run_threaded_broadcast`].
//!
//! Traitor threads implement the same [`TraitorBehavior`] repertoire as
//! the simulator processes, adapted to the runner's timerless loop:
//! equivocators and forgers mount their attack at thread start, silent
//! traitors filter their outgoing edges, and replayers re-flood a stale
//! stashed frame every few received frames.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lhg_graph::{Graph, NodeId};
use lhg_net::codec::{decode_frame, encode_frame};
use lhg_net::message::ByzTag;
use lhg_net::seen::SeenSet;

use crate::engine::{Action, BrachaEngine};
use crate::frame::{digest, GossipFrame, GossipKind};
use crate::sim::TraitorBehavior;
use crate::BrachaConfig;

/// Outcome of a threaded Byzantine broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedByzReport {
    /// Digest each node delivered for the broadcast instance (`None` =
    /// not delivered; traitor slots are always `None`).
    pub delivered_digest: Vec<Option<u64>>,
    /// Total frames sent across all channels.
    pub messages_sent: u64,
}

impl ThreadedByzReport {
    /// `true` if every node outside `traitors` delivered the same digest.
    #[must_use]
    pub fn correct_nodes_agree(&self, traitors: &[NodeId]) -> bool {
        let mut agreed: Option<u64> = None;
        for (v, d) in self.delivered_digest.iter().enumerate() {
            if traitors.contains(&NodeId(v)) {
                continue;
            }
            match (d, agreed) {
                (None, _) => return false,
                (Some(d), None) => agreed = Some(*d),
                (Some(d), Some(a)) if *d != a => return false,
                _ => {}
            }
        }
        agreed.is_some()
    }
}

/// Runs one Bracha broadcast of `payload` from `origin` over `graph`
/// (k-connected) on real threads, with the listed traitors planted.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or listed as a traitor.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_byzantine(
    graph: &Graph,
    k: usize,
    origin: NodeId,
    nonce: u64,
    payload: Bytes,
    traitors: &[(NodeId, TraitorBehavior)],
    idle_timeout: Duration,
    seed: u64,
) -> ThreadedByzReport {
    let n = graph.node_count();
    assert!(origin.index() < n, "origin {origin} out of bounds");
    assert!(
        traitors.iter().all(|(t, _)| *t != origin),
        "origin {origin} must not be a traitor"
    );
    let cfg = BrachaConfig::for_overlay(n, k)
        .expect("LHG overlays are quorum-sound at boot: n ≥ 2k ≥ 4f+2 > 3f+1");

    let mut senders: Vec<Sender<(usize, Bytes)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<(usize, Bytes)>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let delivered: Arc<Mutex<Vec<Option<u64>>>> = Arc::new(Mutex::new(vec![None; n]));
    let messages_sent = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for (v, rx_slot) in receivers.iter_mut().enumerate() {
        let rx = rx_slot.take().expect("receiver present");
        let behavior = traitors
            .iter()
            .find(|(t, _)| t.index() == v)
            .map(|(_, b)| *b);
        let all_txs: Vec<(usize, Sender<(usize, Bytes)>)> = graph
            .neighbors(NodeId(v))
            .map(|w| (w.index(), senders[w.index()].clone()))
            .collect();
        let delivered = Arc::clone(&delivered);
        let messages_sent = Arc::clone(&messages_sent);
        let start = (v == origin.index()).then(|| (nonce, payload.clone()));
        handles.push(std::thread::spawn(move || {
            let me = v as u32;
            let mut engine = BrachaEngine::new(me, cfg);
            let mut seen = SeenSet::default();
            let mut rng = StdRng::seed_from_u64(seed ^ (v as u64).rotate_left(23));
            // Silent traitors talk only to a seeded neighbor subset.
            let neighbor_txs: Vec<(usize, Sender<(usize, Bytes)>)> =
                if behavior == Some(TraitorBehavior::Silent) {
                    all_txs
                        .iter()
                        .filter(|_| rng.random_bool(0.5))
                        .cloned()
                        .collect()
                } else {
                    all_txs.clone()
                };
            let send_all = |frame: &Bytes| {
                for (_, tx) in &neighbor_txs {
                    messages_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send((v, frame.clone()));
                }
            };
            let apply = |actions: Vec<Action>, seen: &mut SeenSet| {
                for action in actions {
                    match action {
                        Action::Gossip(f) => {
                            let msg = f.to_message();
                            seen.insert(msg.broadcast_id);
                            send_all(&encode_frame(&msg));
                        }
                        Action::Deliver(d) => {
                            if behavior.is_none() {
                                delivered.lock()[v] = Some(d.digest);
                            }
                        }
                    }
                }
            };
            if let Some((nonce, payload)) = start {
                let actions = engine
                    .broadcast(nonce, payload)
                    .expect("boot view is sound");
                apply(actions, &mut seen);
            }
            match behavior {
                Some(TraitorBehavior::Equivocate) => {
                    let tag = ByzTag {
                        origin: me,
                        nonce: crate::sim::EQUIVOCATE_NONCE_BASE + u64::from(me),
                    };
                    let mk = |p: &'static [u8]| GossipFrame {
                        kind: GossipKind::Send,
                        witness: me,
                        tag,
                        digest: digest(p),
                        payload: Bytes::from_static(p),
                    };
                    for (i, (_, tx)) in all_txs.iter().enumerate() {
                        let f = if i % 2 == 0 {
                            mk(b"threaded: A")
                        } else {
                            mk(b"threaded: B")
                        };
                        let msg = f.to_message();
                        seen.insert(msg.broadcast_id);
                        messages_sent.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send((v, encode_frame(&msg)));
                    }
                }
                Some(TraitorBehavior::Forge) => {
                    let victim = u32::from(me == 0);
                    let tag = ByzTag {
                        origin: victim,
                        nonce: crate::sim::FORGE_NONCE_BASE + u64::from(me),
                    };
                    let p = Bytes::from_static(b"the origin never said this");
                    let d = digest(&p);
                    for f in [
                        GossipFrame {
                            kind: GossipKind::Echo,
                            witness: me,
                            tag,
                            digest: d,
                            payload: p.clone(),
                        },
                        GossipFrame {
                            kind: GossipKind::Ready,
                            witness: me,
                            tag,
                            digest: d,
                            payload: Bytes::new(),
                        },
                    ] {
                        let msg = f.to_message();
                        seen.insert(msg.broadcast_id);
                        send_all(&encode_frame(&msg));
                    }
                }
                _ => {}
            }
            let mut stash: Vec<Bytes> = Vec::new();
            let mut received = 0u64;
            while let Ok((from, frame)) = rx.recv_timeout(idle_timeout) {
                let msg = decode_frame(&frame).expect("peers only send valid frames");
                if !seen.insert(msg.broadcast_id) {
                    continue;
                }
                received += 1;
                if behavior == Some(TraitorBehavior::Replay) {
                    stash.push(frame.clone());
                    // Every few fresh frames, re-flood a stale stashed one;
                    // peers' seen-sets must absorb the duplicate.
                    if received.is_multiple_of(4) {
                        let idx = rng.random_range(0..stash.len());
                        let stale = stash[idx].clone();
                        send_all(&stale);
                    }
                }
                // Relay so frames keep crossing the overlay.
                let fwd = encode_frame(&msg.forwarded());
                for (w, tx) in &neighbor_txs {
                    if *w != from {
                        messages_sent.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send((v, fwd.clone()));
                    }
                }
                if let Some(gossip) = GossipFrame::from_message(&msg) {
                    let actions = engine.on_gossip(&gossip);
                    apply(actions, &mut seen);
                }
            }
        }));
    }
    drop(senders);
    for h in handles {
        h.join().expect("node thread panicked");
    }

    ThreadedByzReport {
        delivered_digest: Arc::try_unwrap(delivered)
            .expect("all threads joined")
            .into_inner(),
        messages_sent: messages_sent.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_core::ktree::build_ktree;

    fn overlay(n: usize, k: usize) -> Graph {
        build_ktree(n, k)
            .expect("buildable overlay")
            .graph()
            .clone()
    }

    #[test]
    fn threaded_all_correct_delivers_and_agrees() {
        let g = overlay(8, 3);
        let r = run_threaded_byzantine(
            &g,
            3,
            NodeId(0),
            0x1000,
            Bytes::from_static(b"threads agree"),
            &[],
            Duration::from_millis(200),
            1,
        );
        assert!(r.correct_nodes_agree(&[]));
        assert_eq!(
            r.delivered_digest[0],
            Some(digest(b"threads agree")),
            "digest is the payload digest"
        );
    }

    #[test]
    fn threaded_silent_traitor_cannot_stop_delivery() {
        let g = overlay(8, 3);
        let traitors = [(NodeId(4), TraitorBehavior::Silent)];
        let r = run_threaded_byzantine(
            &g,
            3,
            NodeId(0),
            0x1000,
            Bytes::from_static(b"despite silence"),
            &traitors,
            Duration::from_millis(200),
            7,
        );
        assert!(
            r.correct_nodes_agree(&[NodeId(4)]),
            "disjoint paths route around the silent traitor: {:?}",
            r.delivered_digest
        );
    }

    #[test]
    fn threaded_forge_and_replay_do_not_corrupt_the_broadcast() {
        for behavior in [TraitorBehavior::Forge, TraitorBehavior::Replay] {
            let g = overlay(8, 3);
            let traitors = [(NodeId(5), behavior)];
            let r = run_threaded_byzantine(
                &g,
                3,
                NodeId(1),
                0x2000,
                Bytes::from_static(b"authentic"),
                &traitors,
                Duration::from_millis(200),
                13,
            );
            assert!(
                r.correct_nodes_agree(&[NodeId(5)]),
                "{behavior:?}: {:?}",
                r.delivered_digest
            );
            for (v, d) in r.delivered_digest.iter().enumerate() {
                if v != 5 {
                    assert_eq!(*d, Some(digest(b"authentic")), "{behavior:?} node {v}");
                }
            }
        }
    }
}
