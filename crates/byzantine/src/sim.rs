//! Bracha broadcast as discrete-event simulator processes, plus seeded
//! traitor processes implementing the adversarial behaviors the chaos
//! engine exercises.
//!
//! A correct node runs [`ByzantineFlooder`]: flood every gossip frame you
//! have not seen (so frames cross the overlay on all k disjoint paths),
//! feed each first-seen frame to a [`BrachaEngine`], flood whatever it
//! emits, and hand deliveries to the application via `ctx.deliver`.
//!
//! A traitor runs [`ByzantineTraitor`]: the same machinery, corrupted in
//! one seeded way ([`TraitorBehavior`]). Traitors only ever act under
//! their own witness identity — the "signed-enough" model — so their
//! power is bounded exactly as the protocol assumes.
//!
//! Delivered application messages are shaped for the chaos oracle:
//! `broadcast_id` is the instance nonce, `origin` the instance origin,
//! `trace` the certified digest (so agreement is checkable from the
//! [`lhg_net::sim::Delivery`] record alone), and the byz tag rides along.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lhg_graph::{Graph, NodeId};
use lhg_net::message::{ByzTag, Message};
use lhg_net::seen::SeenSet;
use lhg_net::sim::{Context, LinkModel, Process, SimReport, Simulation, Time};

use crate::engine::{Action, BrachaEngine, InstanceSummary, Phase};
use crate::frame::{digest, CatchupPull, CatchupPush, GossipFrame, GossipKind};
use crate::BrachaConfig;

/// Timer token space for scheduled broadcasts (token = schedule index).
const SCHEDULE_TOKEN_LIMIT: u64 = 1 << 32;
/// Token for a traitor's one-shot attack timer.
const ATTACK_TOKEN: u64 = 1 << 40;
/// Token for a replay traitor's recurring re-flood timer.
const REPLAY_TOKEN: u64 = (1 << 40) + 1;
/// Token for a flooder's scheduled permanent crash.
const DIE_TOKEN: u64 = 1 << 33;
/// Token base for a flooder's scheduled membership-view bumps.
const VIEW_BUMP_TOKEN_BASE: u64 = 1 << 34;
/// Token for a flooder's periodic anti-entropy regossip timer.
const REGOSSIP_TOKEN: u64 = 1 << 35;
/// Token for a flooder's scheduled revival (rejoin after a crash).
const REVIVE_TOKEN: u64 = 1 << 36;
/// Token base for a revived flooder's follow-up catch-up solicitations.
const CATCHUP_TOKEN_BASE: u64 = 1 << 37;

/// How many catch-up solicitation rounds a revived node floods (the first
/// at revival, the rest one regossip period apart) — more than one so a
/// pull or push lost to a lossy link cannot strand the rejoiner.
const CATCHUP_ROUNDS: u32 = 3;

/// Regossip period: correct nodes re-emit standing votes this often, so a
/// lossy link cannot permanently starve a quorum of one dropped vote.
const REGOSSIP_PERIOD_US: Time = 100_000;
/// Delay between a scheduled crash and survivors bumping their membership
/// view — the sim stand-in for the runtime's heartbeat failure detector.
const VIEW_BUMP_DELAY_US: Time = 50_000;

/// Delay before a traitor mounts its attack: late enough that dials and
/// first frames have propagated, early enough to race real broadcasts.
const ATTACK_DELAY_US: Time = 20_000;
/// Replay period for [`TraitorBehavior::Replay`].
const REPLAY_PERIOD_US: Time = 50_000;

/// Nonce base for equivocation instances a traitor originates itself.
pub const EQUIVOCATE_NONCE_BASE: u64 = 0xE000_0000;
/// Nonce base for instances a traitor forges under a correct origin.
pub const FORGE_NONCE_BASE: u64 = 0xF000_0000;

/// A broadcast a correct node originates at a scheduled time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledByzBroadcast {
    /// Per-origin instance nonce.
    pub nonce: u64,
    /// Application payload.
    pub payload: Bytes,
    /// Simulated origination time.
    pub at_us: Time,
}

/// The adversarial repertoire: each traitor is corrupted in one way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraitorBehavior {
    /// Originates one instance under its own identity but sends payload A
    /// to half its neighbors and payload B to the other half.
    Equivocate,
    /// Floods `ECHO` + `READY` for an instance a correct origin never
    /// sent, vouched only by itself.
    Forge,
    /// Runs the protocol correctly but forwards gossip only to a seeded
    /// subset of its neighbors (possibly none).
    Silent,
    /// Runs the protocol correctly but stashes every frame it relays and
    /// periodically re-floods stale copies.
    Replay,
    /// Attacks the *failure detector*, not the gossip layer: on the TCP
    /// runtime it floods forged CRASH waves naming a live victim, trying
    /// to excommunicate a node that is still heartbeating. At the gossip
    /// layer it relays honestly but casts no votes.
    FrameCrash,
    /// Attacks *healing*: on the TCP runtime it suppresses its own
    /// heartbeats and summaries so correct nodes legitimately
    /// excommunicate it, forcing churn while it keeps listening. At the
    /// gossip layer it relays honestly but casts no votes.
    SuppressHeartbeat,
}

impl TraitorBehavior {
    /// All behaviors, in seeding order.
    pub const ALL: [TraitorBehavior; 6] = [
        TraitorBehavior::Equivocate,
        TraitorBehavior::Forge,
        TraitorBehavior::Silent,
        TraitorBehavior::Replay,
        TraitorBehavior::FrameCrash,
        TraitorBehavior::SuppressHeartbeat,
    ];

    /// Stable lowercase name (chaos plans and JSON summaries).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraitorBehavior::Equivocate => "equivocate",
            TraitorBehavior::Forge => "forge",
            TraitorBehavior::Silent => "silent",
            TraitorBehavior::Replay => "replay",
            TraitorBehavior::FrameCrash => "frame_crash",
            TraitorBehavior::SuppressHeartbeat => "suppress_heartbeat",
        }
    }
}

/// A scheduled crash of a correct node mid-run: the node goes mute and
/// deaf at `at_us`, and every survivor bumps its membership view one
/// failure-detection delay later. When `revive_at_us` is set the node
/// comes back at that time — it floods catch-up solicitations
/// ([`CatchupPull`]) to converge on instances it missed, and every node
/// bumps its view back *up* one detection delay after the revival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzCrash {
    /// Simulated time the node dies.
    pub at_us: Time,
    /// The node that dies.
    pub node: NodeId,
    /// Simulated time the node rejoins (`None`: the crash is permanent).
    pub revive_at_us: Option<Time>,
}

/// A correct node: flood-relay gossip, run the Bracha engine, deliver.
pub struct ByzantineFlooder {
    engine: BrachaEngine,
    seen: SeenSet,
    schedule: Vec<ScheduledByzBroadcast>,
    /// Scheduled crash: after this time the node is mute & deaf.
    dies_at: Option<Time>,
    /// Scheduled revival: at this time a crashed node rejoins and floods
    /// catch-up solicitations.
    revives_at: Option<Time>,
    dead: bool,
    /// Scheduled membership-view bumps `(time, new n)` from churn waves
    /// (downward on crashes, upward on revivals).
    view_bumps: Vec<(Time, usize)>,
    /// Anti-entropy period (None: regossip disabled, the lossless default).
    regossip_period: Option<Time>,
    metrics: Option<std::sync::Arc<lhg_net::metrics::MetricsRegistry>>,
}

impl ByzantineFlooder {
    /// A correct node `me` with quorum config `cfg` that only relays.
    #[must_use]
    pub fn new(me: u32, cfg: BrachaConfig) -> Self {
        ByzantineFlooder {
            engine: BrachaEngine::new(me, cfg),
            seen: SeenSet::default(),
            schedule: Vec::new(),
            dies_at: None,
            revives_at: None,
            dead: false,
            view_bumps: Vec::new(),
            regossip_period: None,
            metrics: None,
        }
    }

    /// The same node originating `schedule` at the given times.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Vec<ScheduledByzBroadcast>) -> Self {
        assert!((schedule.len() as u64) < SCHEDULE_TOKEN_LIMIT);
        self.schedule = schedule;
        self
    }

    /// The same node crashing permanently at `at_us`.
    #[must_use]
    pub fn with_death(mut self, at_us: Time) -> Self {
        self.dies_at = Some(at_us);
        self
    }

    /// The same node reviving at `at_us` after its scheduled death: it
    /// rejoins the gossip plane and floods [`CatchupPull`] solicitations
    /// to converge on instances it missed while dead.
    #[must_use]
    pub fn with_revival(mut self, at_us: Time) -> Self {
        assert!(
            self.dies_at.is_some_and(|d| d < at_us),
            "revival must follow a scheduled death"
        );
        self.revives_at = Some(at_us);
        self
    }

    /// Schedules membership-view bumps — `(time, new n)` per detected
    /// crash — and enables periodic regossip so the re-sized quorums can
    /// refill even when individual vote frames were lost.
    #[must_use]
    pub fn with_view_bumps(mut self, bumps: Vec<(Time, usize)>) -> Self {
        self.view_bumps = bumps;
        self.regossip_period = Some(REGOSSIP_PERIOD_US);
        self
    }

    /// Records quorum-safety metrics: each refused view bump increments
    /// the `byz.unsafe_views` counter the chaos oracle audits.
    #[must_use]
    pub fn with_metrics(
        mut self,
        metrics: std::sync::Arc<lhg_net::metrics::MetricsRegistry>,
    ) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn apply(&mut self, actions: Vec<Action>, ctx: &mut Context<'_>) {
        for action in actions {
            match action {
                Action::Gossip(frame) => {
                    let msg = frame.to_message();
                    self.flood(msg, ctx);
                }
                Action::Deliver(d) => {
                    let msg = Message::new(d.tag.nonce, d.tag.origin, d.payload)
                        .with_trace(d.digest)
                        .with_byz(d.tag);
                    ctx.deliver(msg);
                }
            }
        }
    }

    /// Floods `msg` to all neighbors, marking it seen first so relayed
    /// copies dedup.
    fn flood(&mut self, msg: Message, ctx: &mut Context<'_>) {
        self.seen.insert(msg.broadcast_id);
        for &w in &ctx.neighbors().to_vec() {
            ctx.send(w, msg.clone());
        }
    }

    fn bump_count(&self, name: &'static str) {
        if let Some(m) = &self.metrics {
            m.counter(name).inc();
        }
    }

    /// Floods one catch-up solicitation round. Every correct node that
    /// sees it replies with a flooded [`CatchupPush`] of its summaries.
    fn solicit_catchup(&mut self, round: u32, ctx: &mut Context<'_>) {
        let pull = CatchupPull {
            requester: self.engine.id(),
            round,
        };
        self.flood(pull.to_message(), ctx);
        self.bump_count("byz.catchup_pulls");
    }
}

impl Process for ByzantineFlooder {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (idx, b) in self.schedule.iter().enumerate() {
            ctx.set_timer(b.at_us, idx as u64);
        }
        if let Some(at) = self.dies_at {
            ctx.set_timer(at, DIE_TOKEN);
        }
        if let Some(at) = self.revives_at {
            ctx.set_timer(at, REVIVE_TOKEN);
        }
        for (idx, (at, _)) in self.view_bumps.iter().enumerate() {
            ctx.set_timer(*at, VIEW_BUMP_TOKEN_BASE + idx as u64);
        }
        if let Some(period) = self.regossip_period {
            ctx.set_timer(period, REGOSSIP_TOKEN);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        if self.dead {
            return; // crashed nodes neither relay nor vote
        }
        if !self.seen.insert(msg.broadcast_id) {
            return; // duplicate copy on another disjoint path
        }
        // Relay first so the frame keeps crossing the overlay even if the
        // local engine rejects it.
        let fwd = msg.forwarded();
        for &w in &ctx.neighbors().to_vec() {
            if w != from {
                ctx.send(w, fwd.clone());
            }
        }
        if let Some(frame) = GossipFrame::from_message(&msg) {
            let actions = self.engine.on_gossip(&frame);
            self.apply(actions, ctx);
        } else if let Some(pull) = CatchupPull::from_message(&msg) {
            // Serve a rejoiner: flood back this node's summary attestation.
            // The push's id is distinct per witness, so every reply crosses
            // the overlay independently and the rejoiner hears from enough
            // distinct peers to corroborate.
            if pull.requester != self.engine.id() {
                let push = CatchupPush {
                    witness: self.engine.id(),
                    requester: pull.requester,
                    round: pull.round,
                    items: self.engine.summaries(),
                };
                self.flood(push.to_message(), ctx);
                self.bump_count("byz.catchup_pushes");
            }
        } else if let Some(push) = CatchupPush::from_message(&msg) {
            // Already relayed above; only the addressee ingests.
            if push.requester == self.engine.id() {
                let actions = self.engine.ingest_summaries(push.witness, &push.items);
                self.apply(actions, ctx);
                self.bump_count("byz.catchup_ingests");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == DIE_TOKEN {
            self.dead = true;
            return;
        }
        if token == REVIVE_TOKEN {
            // Rejoin: wake up, resync the membership view to the latest
            // bump that fired while dead (those timers were swallowed),
            // re-arm the anti-entropy timer chain the death cut, and start
            // soliciting catch-up summaries.
            self.dead = false;
            let now = ctx.now();
            let died = self.dies_at.unwrap_or(0);
            let missed = self
                .view_bumps
                .iter()
                .rfind(|(t, _)| *t > died && *t <= now);
            if let Some(&(_, n)) = missed {
                if self.engine.bump_view(n).is_err() {
                    self.bump_count("byz.unsafe_views");
                }
            }
            if let Some(period) = self.regossip_period {
                ctx.set_timer(period, REGOSSIP_TOKEN);
            }
            self.solicit_catchup(0, ctx);
            for round in 1..CATCHUP_ROUNDS {
                ctx.set_timer(
                    REGOSSIP_PERIOD_US * Time::from(round),
                    CATCHUP_TOKEN_BASE + u64::from(round),
                );
            }
            return;
        }
        if self.dead {
            return;
        }
        if token >= CATCHUP_TOKEN_BASE && token < CATCHUP_TOKEN_BASE + u64::from(CATCHUP_ROUNDS) {
            let round = (token - CATCHUP_TOKEN_BASE) as u32;
            self.solicit_catchup(round, ctx);
            return;
        }
        if token == REGOSSIP_TOKEN {
            // Anti-entropy: re-flood standing votes. Peers that already
            // saw them dedup; peers that lost them to a lossy link gain
            // the vote — which is what keeps post-churn quorums fillable.
            for action in self.engine.regossip() {
                if let Action::Gossip(frame) = action {
                    let msg = frame.to_message();
                    for &w in &ctx.neighbors().to_vec() {
                        ctx.send(w, msg.clone());
                    }
                }
            }
            if let Some(period) = self.regossip_period {
                ctx.set_timer(period, REGOSSIP_TOKEN);
            }
            return;
        }
        if token >= VIEW_BUMP_TOKEN_BASE {
            let idx = (token - VIEW_BUMP_TOKEN_BASE) as usize;
            if let Some(&(_, new_n)) = self.view_bumps.get(idx) {
                if self.engine.bump_view(new_n).is_err() {
                    if let Some(m) = &self.metrics {
                        m.counter("byz.unsafe_views").inc();
                    }
                }
            }
            return;
        }
        if let Some(b) = self.schedule.get(token as usize) {
            let (nonce, payload) = (b.nonce, b.payload.clone());
            // A refusal means the live view is unsound (n < 3f+1); the
            // engine counts it and the oracle reports QuorumUnsafe.
            if let Ok(actions) = self.engine.broadcast(nonce, payload) {
                self.apply(actions, ctx);
            } else if let Some(m) = &self.metrics {
                m.counter("byz.unsafe_views").inc();
            }
        }
    }
}

/// A traitor node: correct-protocol scaffolding corrupted in one seeded
/// way. All misbehavior happens under the traitor's own witness identity.
pub struct ByzantineTraitor {
    me: u32,
    behavior: TraitorBehavior,
    engine: BrachaEngine,
    seen: SeenSet,
    rng: StdRng,
    /// Neighbors a Silent traitor deigns to talk to (none: fully mute).
    allowed: Option<Vec<NodeId>>,
    /// Frames a Replay traitor has stashed for re-flooding.
    stash: Vec<Message>,
}

impl ByzantineTraitor {
    /// A traitor at node `me` with the given corruption, deterministically
    /// seeded.
    #[must_use]
    pub fn new(me: u32, cfg: BrachaConfig, behavior: TraitorBehavior, seed: u64) -> Self {
        ByzantineTraitor {
            me,
            behavior,
            engine: BrachaEngine::new(me, cfg),
            seen: SeenSet::default(),
            rng: StdRng::seed_from_u64(seed ^ u64::from(me).rotate_left(17)),
            allowed: None,
            stash: Vec::new(),
        }
    }

    /// The neighbors this traitor currently sends to.
    fn targets(&self, ctx: &Context<'_>) -> Vec<NodeId> {
        match &self.allowed {
            Some(subset) => subset.clone(),
            None => ctx.neighbors().to_vec(),
        }
    }

    fn flood(&mut self, frame: &GossipFrame, ctx: &mut Context<'_>) {
        let msg = frame.to_message();
        self.seen.insert(msg.broadcast_id);
        for w in self.targets(ctx) {
            ctx.send(w, msg.clone());
        }
    }

    /// Split-brain origination: payload A to even-indexed neighbors,
    /// payload B to odd-indexed ones, same instance tag.
    fn equivocate(&mut self, ctx: &mut Context<'_>) {
        let tag = ByzTag {
            origin: self.me,
            nonce: EQUIVOCATE_NONCE_BASE + u64::from(self.me),
        };
        let mk = |payload: &'static [u8]| GossipFrame {
            kind: GossipKind::Send,
            witness: self.me,
            tag,
            digest: digest(payload),
            payload: Bytes::from_static(payload),
        };
        let (a, b) = (mk(b"two-faced: A"), mk(b"two-faced: B"));
        self.seen.insert(a.to_message().broadcast_id);
        self.seen.insert(b.to_message().broadcast_id);
        for (i, w) in ctx.neighbors().to_vec().into_iter().enumerate() {
            let msg = if i % 2 == 0 {
                a.to_message()
            } else {
                b.to_message()
            };
            ctx.send(w, msg);
        }
    }

    /// Fabricates an instance claiming a correct origin sent it, then
    /// vouches for it with its own ECHO + READY. Under the bound this is
    /// one witness where f+1 are needed, so correct nodes ignore it.
    fn forge(&mut self, ctx: &mut Context<'_>) {
        let victim = if self.me == 0 { 1 } else { 0 };
        let tag = ByzTag {
            origin: victim,
            nonce: FORGE_NONCE_BASE + u64::from(self.me),
        };
        let payload = Bytes::from_static(b"the origin never said this");
        let d = digest(&payload);
        let echo = GossipFrame {
            kind: GossipKind::Echo,
            witness: self.me,
            tag,
            digest: d,
            payload,
        };
        let ready = GossipFrame {
            kind: GossipKind::Ready,
            witness: self.me,
            tag,
            digest: d,
            payload: Bytes::new(),
        };
        self.flood(&echo, ctx);
        self.flood(&ready, ctx);
    }

    /// Answers a rejoiner's catch-up solicitation with poison: a fabricated
    /// Delivered instance the majority never saw, plus digest-flipped
    /// copies of every real summary this traitor holds. All of it is one
    /// witness's word — f short of amplification, 2f short of delivery.
    fn forged_catchup_reply(&mut self, pull: &CatchupPull, ctx: &mut Context<'_>) {
        let victim = if pull.requester == 0 { 1 } else { 0 };
        let payload = Bytes::from_static(b"forged catch-up: majority never delivered this");
        let mut items = vec![InstanceSummary {
            tag: ByzTag {
                origin: victim,
                nonce: FORGE_NONCE_BASE + 0x500 + u64::from(self.me),
            },
            phase: Phase::Delivered,
            digest: digest(&payload),
            payload,
        }];
        for real in self.engine.summaries() {
            items.push(InstanceSummary {
                tag: real.tag,
                phase: Phase::Delivered,
                digest: real.digest.wrapping_add(1),
                payload: Bytes::new(),
            });
        }
        let push = CatchupPush {
            witness: self.me,
            requester: pull.requester,
            round: pull.round,
            items,
        };
        let msg = push.to_message();
        self.seen.insert(msg.broadcast_id);
        for w in self.targets(ctx) {
            ctx.send(w, msg.clone());
        }
    }
}

impl Process for ByzantineTraitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.behavior == TraitorBehavior::Silent {
            // Fully mute, matching the TCP engine's silent traitor: no
            // relays, no votes. One mute node is within the f budget; over
            // budget, mute nodes starve the echo quorum and the oracle
            // fires — which is exactly how the bound's tightness is shown.
            self.allowed = Some(Vec::new());
        }
        match self.behavior {
            TraitorBehavior::Equivocate | TraitorBehavior::Forge => {
                ctx.set_timer(ATTACK_DELAY_US, ATTACK_TOKEN);
            }
            TraitorBehavior::Replay => ctx.set_timer(REPLAY_PERIOD_US, REPLAY_TOKEN),
            // Failure-detector attacks have no gossip-layer timer: their
            // teeth are in the TCP runtime (node.rs mounts them there).
            TraitorBehavior::Silent
            | TraitorBehavior::FrameCrash
            | TraitorBehavior::SuppressHeartbeat => {}
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        if !self.seen.insert(msg.broadcast_id) {
            return;
        }
        if self.behavior == TraitorBehavior::Replay {
            self.stash.push(msg.clone());
        }
        let fwd = msg.forwarded();
        for w in self.targets(ctx) {
            if w != from {
                ctx.send(w, fwd.clone());
            }
        }
        if let Some(pull) = CatchupPull::from_message(&msg) {
            // A rejoiner is asking to be caught up — poison the well. The
            // forged summaries are one uncorroborated voice, so a correct
            // rejoiner's engine must shrug them off.
            if pull.requester != self.me
                && matches!(
                    self.behavior,
                    TraitorBehavior::Equivocate | TraitorBehavior::Forge
                )
            {
                self.forged_catchup_reply(&pull, ctx);
            }
            return;
        }
        if matches!(
            self.behavior,
            TraitorBehavior::FrameCrash | TraitorBehavior::SuppressHeartbeat
        ) {
            return; // honest relay, but no votes of its own
        }
        if let Some(frame) = GossipFrame::from_message(&msg) {
            let actions = self.engine.on_gossip(&frame);
            for action in actions {
                if let Action::Gossip(out) = action {
                    self.flood(&out, ctx);
                }
                // Traitor deliveries are not reported: the oracle only
                // audits correct nodes.
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match (token, self.behavior) {
            (ATTACK_TOKEN, TraitorBehavior::Equivocate) => self.equivocate(ctx),
            (ATTACK_TOKEN, TraitorBehavior::Forge) => self.forge(ctx),
            (REPLAY_TOKEN, TraitorBehavior::Replay) => {
                // Re-flood a few stale stashed frames; correct nodes'
                // seen-sets must absorb them without double processing.
                for _ in 0..self.stash.len().min(4) {
                    let idx = self.rng.random_range(0..self.stash.len());
                    let stale = self.stash[idx].clone();
                    for w in self.targets(ctx) {
                        ctx.send(w, stale.clone());
                    }
                }
                ctx.set_timer(REPLAY_PERIOD_US, REPLAY_TOKEN);
            }
            _ => {}
        }
    }
}

/// Runs Bracha broadcasts over `graph` (k-connected) with the given
/// traitors, returning the raw simulator report. Correct nodes listed in
/// `schedules` originate their broadcasts at the scheduled times.
///
/// The protocol runs at the full budget f = ⌊(k−1)/2⌉ regardless of how
/// many traitors are actually planted — planting more than f demonstrates
/// the bound is tight (the oracle fires).
///
/// # Panics
///
/// Panics if a scheduled origin is also listed as a traitor, or if the
/// quorums would be unsound (n < 3f+1).
#[must_use]
pub fn run_sim_byzantine(
    graph: &Graph,
    k: usize,
    schedules: &[(NodeId, Vec<ScheduledByzBroadcast>)],
    traitors: &[(NodeId, TraitorBehavior)],
    link: LinkModel,
    seed: u64,
    horizon: Time,
) -> SimReport {
    run_sim_byzantine_with_metrics(graph, k, schedules, traitors, link, seed, horizon, None)
}

/// Like [`run_sim_byzantine`], additionally recording into `metrics` when
/// provided: the simulator's `sim.*` counters plus per-class wire-cost
/// accounting (every gossip frame lands in the `byz` class), which is how
/// the bench baseline measures Bracha's bytes on the wire.
///
/// # Panics
///
/// Same contract as [`run_sim_byzantine`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_sim_byzantine_with_metrics(
    graph: &Graph,
    k: usize,
    schedules: &[(NodeId, Vec<ScheduledByzBroadcast>)],
    traitors: &[(NodeId, TraitorBehavior)],
    link: LinkModel,
    seed: u64,
    horizon: Time,
    metrics: Option<std::sync::Arc<lhg_net::metrics::MetricsRegistry>>,
) -> SimReport {
    run_sim_byzantine_churn(
        graph,
        k,
        schedules,
        traitors,
        &[],
        None,
        link,
        seed,
        horizon,
        metrics,
    )
}

/// Like [`run_sim_byzantine_with_metrics`], with full-lifecycle membership
/// churn: nodes listed in `crashes` die mid-run (permanently, or until
/// their scheduled `revive_at_us`), and every node bumps its engine's
/// membership view one detection delay after each death *and each
/// revival* — so instances originated after churn size their quorums from
/// live membership (downward and upward), while in-flight ones keep the
/// view they snapshotted. A revived node floods [`CatchupPull`]
/// solicitations; correct peers answer with flooded summary attestations
/// it corroborates through the regular quorum machinery.
///
/// When any crash is scheduled, correct nodes also regossip standing
/// votes periodically (anti-entropy), so lossy links cannot permanently
/// starve the post-churn quorums. A view that would dip below 3f+1 is
/// refused by the engine and counted on the `byz.unsafe_views` metrics
/// counter — the signal behind the chaos oracle's `QuorumUnsafe`
/// violation.
///
/// `faults`, when given, puts a link-fault injector under the gossip
/// plane (drops, duplicates, reorders — the mixed chaos family): byz
/// frames are best-effort floods, so the regossip anti-entropy above is
/// what repairs the losses.
///
/// # Panics
///
/// Panics if a scheduled origin or a crash victim is listed as a traitor,
/// or if the boot quorums would be unsound (n < 3f+1).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_sim_byzantine_churn(
    graph: &Graph,
    k: usize,
    schedules: &[(NodeId, Vec<ScheduledByzBroadcast>)],
    traitors: &[(NodeId, TraitorBehavior)],
    crashes: &[ByzCrash],
    faults: Option<std::sync::Arc<lhg_net::fault::FaultInjector>>,
    link: LinkModel,
    seed: u64,
    horizon: Time,
    metrics: Option<std::sync::Arc<lhg_net::metrics::MetricsRegistry>>,
) -> SimReport {
    let n = graph.node_count();
    let cfg = BrachaConfig::for_overlay(n, k)
        .expect("LHG overlays are quorum-sound at boot: n ≥ 2k ≥ 4f+2 > 3f+1");
    for (origin, _) in schedules {
        assert!(
            traitors.iter().all(|(t, _)| t != origin),
            "scheduled origin {origin} is a traitor"
        );
    }
    for c in crashes {
        assert!(
            traitors.iter().all(|(t, _)| *t != c.node),
            "crash victim {} is a traitor (traitors lie, they don't die)",
            c.node
        );
    }
    let mut ordered: Vec<ByzCrash> = crashes.to_vec();
    ordered.sort_by_key(|c| (c.at_us, c.node.index()));
    // One view bump per churn event — down on each detected crash, up on
    // each detected revival — tracking the live count over time. With no
    // revivals this reduces to the old strictly-downward sequence.
    let mut events: Vec<(Time, i64)> = Vec::new();
    for c in &ordered {
        events.push((c.at_us + VIEW_BUMP_DELAY_US, -1));
        if let Some(r) = c.revive_at_us {
            assert!(r > c.at_us, "revival must follow the crash");
            events.push((r + VIEW_BUMP_DELAY_US, 1));
        }
    }
    events.sort_unstable();
    let mut live = n as i64;
    let bumps: Vec<(Time, usize)> = events
        .into_iter()
        .map(|(t, delta)| {
            live += delta;
            (
                t,
                usize::try_from(live).expect("live membership never negative"),
            )
        })
        .collect();
    let mut sim = Simulation::new(graph, link, seed);
    if let Some(m) = &metrics {
        sim.with_metrics(m.clone());
    }
    if let Some(f) = faults {
        sim.with_faults(f);
    }
    let processes: Vec<Box<dyn Process>> = (0..n)
        .map(|v| -> Box<dyn Process> {
            let id = NodeId(v);
            if let Some(&(_, behavior)) = traitors.iter().find(|(t, _)| *t == id) {
                Box::new(ByzantineTraitor::new(v as u32, cfg, behavior, seed))
            } else {
                let schedule = schedules
                    .iter()
                    .find(|(o, _)| *o == id)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_default();
                let mut flooder = ByzantineFlooder::new(v as u32, cfg).with_schedule(schedule);
                if let Some(c) = ordered.iter().find(|c| c.node == id) {
                    flooder = flooder.with_death(c.at_us);
                    if let Some(r) = c.revive_at_us {
                        flooder = flooder.with_revival(r);
                    }
                }
                if !ordered.is_empty() {
                    flooder = flooder.with_view_bumps(bumps.clone());
                }
                if let Some(m) = &metrics {
                    flooder = flooder.with_metrics(m.clone());
                }
                Box::new(flooder)
            }
        })
        .collect();
    sim.run(processes, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_core::ktree::build_ktree;
    use std::collections::{BTreeMap, BTreeSet};

    fn no_jitter() -> LinkModel {
        LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
        }
    }

    fn overlay(n: usize, k: usize) -> Graph {
        build_ktree(n, k)
            .expect("buildable overlay")
            .graph()
            .clone()
    }

    /// Delivered nonces per node, with their digests.
    fn delivered_by_node(report: &SimReport, n: usize) -> Vec<BTreeMap<u64, u64>> {
        let mut out = vec![BTreeMap::new(); n];
        for d in &report.deliveries {
            let prev = out[d.node.index()].insert(d.broadcast_id, d.trace.unwrap_or(0));
            assert!(
                prev.is_none(),
                "node {} delivered nonce {} twice",
                d.node,
                d.broadcast_id
            );
        }
        out
    }

    fn sched(nonce: u64, at_us: Time) -> ScheduledByzBroadcast {
        ScheduledByzBroadcast {
            nonce,
            payload: Bytes::from_static(b"scheduled payload"),
            at_us,
        }
    }

    #[test]
    fn all_correct_overlay_delivers_everywhere() {
        let g = overlay(8, 3);
        let report = run_sim_byzantine(
            &g,
            3,
            &[(NodeId(0), vec![sched(0x1000, 0)])],
            &[],
            no_jitter(),
            7,
            2_000_000,
        );
        let per_node = delivered_by_node(&report, 8);
        for (v, d) in per_node.iter().enumerate() {
            assert!(d.contains_key(&0x1000), "node {v} delivered");
        }
    }

    #[test]
    fn each_traitor_behavior_cannot_break_safety_or_validity() {
        for behavior in TraitorBehavior::ALL {
            let g = overlay(8, 3);
            let report = run_sim_byzantine(
                &g,
                3,
                &[(NodeId(0), vec![sched(0x1000, 10_000)])],
                &[(NodeId(4), behavior)],
                no_jitter(),
                11,
                2_000_000,
            );
            let per_node = delivered_by_node(&report, 8);
            // Validity: every correct node delivers the scheduled nonce.
            let mut digests = BTreeSet::new();
            for (v, d) in per_node.iter().enumerate() {
                if v == 4 {
                    continue;
                }
                let dig = d
                    .get(&0x1000)
                    .unwrap_or_else(|| panic!("{behavior:?}: node {v} missed the broadcast"));
                digests.insert(*dig);
                // Integrity: nothing outside the scheduled + traitor-own
                // instance spaces is delivered.
                for nonce in d.keys() {
                    assert!(
                        *nonce == 0x1000 || *nonce >= EQUIVOCATE_NONCE_BASE,
                        "{behavior:?}: node {v} delivered forged nonce {nonce:#x}"
                    );
                    assert!(
                        *nonce < FORGE_NONCE_BASE || *nonce >= FORGE_NONCE_BASE + 0x1000_0000,
                        "{behavior:?}: node {v} delivered a forged instance"
                    );
                }
            }
            // Agreement on the scheduled broadcast.
            assert_eq!(digests.len(), 1, "{behavior:?}: digest disagreement");
            // Agreement on any traitor-originated instance (equivocation):
            // nodes may or may not deliver it, but never different digests.
            let mut equiv: BTreeSet<u64> = BTreeSet::new();
            for (v, d) in per_node.iter().enumerate() {
                if v == 4 {
                    continue;
                }
                for (nonce, dig) in d {
                    if *nonce >= EQUIVOCATE_NONCE_BASE && *nonce < FORGE_NONCE_BASE {
                        equiv.insert(*dig);
                    }
                }
            }
            assert!(
                equiv.len() <= 1,
                "{behavior:?}: equivocation split correct nodes"
            );
        }
    }

    #[test]
    fn traitor_origin_totality_holds_under_equivocation() {
        // If ANY correct node delivers the equivocator's instance, ALL
        // correct nodes must (Bracha totality).
        let g = overlay(10, 3);
        let report = run_sim_byzantine(
            &g,
            3,
            &[(NodeId(0), vec![sched(0x1000, 10_000)])],
            &[(NodeId(5), TraitorBehavior::Equivocate)],
            no_jitter(),
            3,
            2_000_000,
        );
        let per_node = delivered_by_node(&report, 10);
        let equiv_nonce = EQUIVOCATE_NONCE_BASE + 5;
        let deliverers: Vec<usize> = (0..10)
            .filter(|&v| v != 5 && per_node[v].contains_key(&equiv_nonce))
            .collect();
        assert!(
            deliverers.is_empty() || deliverers.len() == 9,
            "totality violated: only {deliverers:?} delivered the equivocated instance"
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let g = overlay(8, 3);
        let run = || {
            run_sim_byzantine(
                &g,
                3,
                &[(NodeId(1), vec![sched(0x1000, 5_000)])],
                &[(NodeId(6), TraitorBehavior::Replay)],
                no_jitter(),
                42,
                2_000_000,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn post_churn_broadcasts_deliver_at_survivor_quorums() {
        // n=8, k=3 (f=1): node 7 dies at 300ms; node 0 originates one
        // broadcast before the crash and one after. Survivors bump their
        // view to n=7 and the post-churn instance must still reach every
        // survivor under the re-sized quorums.
        let g = overlay(8, 3);
        let report = run_sim_byzantine_churn(
            &g,
            3,
            &[(
                NodeId(0),
                vec![sched(0x1000, 10_000), sched(0x1001, 600_000)],
            )],
            &[],
            &[ByzCrash {
                at_us: 300_000,
                node: NodeId(7),
                revive_at_us: None,
            }],
            None,
            no_jitter(),
            5,
            2_000_000,
            None,
        );
        let per_node = delivered_by_node(&report, 8);
        for (v, d) in per_node.iter().enumerate().take(7) {
            assert!(d.contains_key(&0x1000), "survivor {v}: pre-churn");
            assert!(d.contains_key(&0x1001), "survivor {v}: post-churn");
        }
        // The dead node never delivers the post-crash instance.
        assert!(!per_node[7].contains_key(&0x1001), "the dead do not vote");
    }

    #[test]
    fn churn_with_a_traitor_is_deterministic() {
        let g = overlay(10, 3);
        let run = || {
            run_sim_byzantine_churn(
                &g,
                3,
                &[(
                    NodeId(1),
                    vec![sched(0x1000, 10_000), sched(0x1001, 700_000)],
                )],
                &[(NodeId(6), TraitorBehavior::FrameCrash)],
                &[ByzCrash {
                    at_us: 350_000,
                    node: NodeId(9),
                    revive_at_us: None,
                }],
                None,
                no_jitter(),
                42,
                2_000_000,
                None,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn view_dip_below_quorum_floor_is_counted_not_panicked() {
        // k=5 ⇒ f=2 ⇒ floor 3f+1 = 7. Crash 6 of 12 nodes: the first five
        // bumps (n = 11..7) are sound, the sixth (n = 6) is refused — each
        // of the 6 survivors counts it on byz.unsafe_views.
        let g = overlay(12, 5);
        let metrics = std::sync::Arc::new(lhg_net::metrics::MetricsRegistry::new());
        let crashes: Vec<ByzCrash> = (6..12)
            .map(|v| ByzCrash {
                at_us: 100_000 * (v as Time - 5),
                node: NodeId(v),
                revive_at_us: None,
            })
            .collect();
        let _ = run_sim_byzantine_churn(
            &g,
            5,
            &[(NodeId(0), vec![sched(0x1000, 10_000)])],
            &[],
            &crashes,
            None,
            no_jitter(),
            9,
            2_000_000,
            Some(metrics.clone()),
        );
        assert_eq!(metrics.counter("byz.unsafe_views").get(), 6);
    }

    #[test]
    fn revived_node_catches_up_on_instances_missed_while_dead() {
        // n=8, k=3 (f=1): node 7 dies at 300ms and revives at 600ms.
        // Node 0 originates at 400ms — entirely inside node 7's dead
        // window — and again at 900ms. The revived node must converge on
        // BOTH: the missed instance via catch-up summary corroboration,
        // the later one via live gossip under the bumped-up view.
        let g = overlay(8, 3);
        let report = run_sim_byzantine_churn(
            &g,
            3,
            &[(
                NodeId(0),
                vec![
                    sched(0x1000, 10_000),
                    sched(0x1001, 400_000),
                    sched(0x1002, 900_000),
                ],
            )],
            &[],
            &[ByzCrash {
                at_us: 300_000,
                node: NodeId(7),
                revive_at_us: Some(600_000),
            }],
            None,
            no_jitter(),
            5,
            2_000_000,
            None,
        );
        let per_node = delivered_by_node(&report, 8);
        for (v, d) in per_node.iter().enumerate() {
            assert!(d.contains_key(&0x1000), "node {v}: pre-churn");
            assert!(
                d.contains_key(&0x1001),
                "node {v}: originated while 7 was dead"
            );
            assert!(d.contains_key(&0x1002), "node {v}: post-revival");
        }
        // Agreement: the revived node's digests match the majority's.
        for nonce in [0x1000u64, 0x1001, 0x1002] {
            let digests: BTreeSet<u64> = per_node.iter().map(|d| d[&nonce]).collect();
            assert_eq!(digests.len(), 1, "nonce {nonce:#x} digest agreement");
        }
    }

    #[test]
    fn forged_catchup_summaries_cannot_poison_a_revived_node() {
        // Same lifecycle, with a Forge traitor that answers the rejoiner's
        // solicitation with a fabricated Delivered instance and
        // digest-flipped copies of the real ones. One uncorroborated voice:
        // the rejoiner must still converge on the true digests and must
        // never deliver the fabricated instance.
        let g = overlay(10, 3);
        let report = run_sim_byzantine_churn(
            &g,
            3,
            &[(
                NodeId(0),
                vec![sched(0x1000, 10_000), sched(0x1001, 400_000)],
            )],
            &[(NodeId(4), TraitorBehavior::Forge)],
            &[ByzCrash {
                at_us: 300_000,
                node: NodeId(9),
                revive_at_us: Some(600_000),
            }],
            None,
            no_jitter(),
            13,
            2_000_000,
            None,
        );
        let per_node = delivered_by_node(&report, 10);
        let mut digests_per_nonce: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for (v, d) in per_node.iter().enumerate() {
            if v == 4 {
                continue;
            }
            for (nonce, dig) in d {
                assert!(
                    *nonce < FORGE_NONCE_BASE || *nonce >= FORGE_NONCE_BASE + 0x1000_0000,
                    "node {v} delivered a forged instance {nonce:#x}"
                );
                digests_per_nonce.entry(*nonce).or_default().insert(*dig);
            }
            assert!(
                d.contains_key(&0x1001),
                "node {v} missed the dead-window instance"
            );
        }
        for (nonce, digs) in digests_per_nonce {
            assert_eq!(digs.len(), 1, "digest split on {nonce:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "is a traitor")]
    fn traitor_origin_is_rejected() {
        let g = overlay(8, 3);
        let _ = run_sim_byzantine(
            &g,
            3,
            &[(NodeId(4), vec![sched(1, 0)])],
            &[(NodeId(4), TraitorBehavior::Silent)],
            no_jitter(),
            0,
            1_000,
        );
    }
}
