//! Gossip frame codec: Bracha protocol messages as flooding broadcasts.
//!
//! Every protocol step (SEND / ECHO / READY) is one [`GossipFrame`],
//! disseminated by flooding it over the LHG overlay like any other
//! broadcast. A frame rides in a [`Message`] as:
//!
//! ```text
//! broadcast_id : gossip_frame_id(kind, witness, tag, digest) — BYZ-tagged
//! origin       : the witness (who vouches for this frame)
//! payload      : [kind u8 | digest u64 | application payload…]
//! byz ext      : the instance tag (claimed origin + nonce)
//! ```
//!
//! The broadcast id is a deterministic hash of the frame's identifying
//! tuple with bit 56 ([`BYZ_ID_TAG`]) set, so (a) flooding dedup works on
//! every engine without extra state, (b) replayed frames are absorbed by
//! the same dedup, and (c) the TCP runtime's frame classifier can route
//! byz gossip without decoding payloads.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lhg_net::message::{ByzTag, Message};

/// Tag bit marking a broadcast id as Byzantine gossip (bit 56 — below the
/// TCP runtime's control tags in bits 57..64, above its data id space).
/// The numeric value is [`lhg_net::wirecost::BYZ_TAG`], the canonical home
/// of the class-tag bits, so wire-cost accounting classifies byz gossip
/// without this crate in its dependency graph.
pub const BYZ_ID_TAG: u64 = lhg_net::wirecost::BYZ_TAG;

/// Mask selecting the 56 hash bits of a byz gossip id.
pub const BYZ_ID_MASK: u64 = BYZ_ID_TAG - 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a digest of an application payload. Not cryptographic — the
/// "signed-enough" model assumes attribution is unforgeable, and the
/// digest only has to distinguish payloads a traitor actually sends.
#[must_use]
pub fn digest(payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The three Bracha protocol steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GossipKind {
    /// The origin's initial dissemination of the payload.
    Send,
    /// A witness attests it saw a `SEND` with this digest.
    Echo,
    /// A witness attests the digest is echo-certified (or amplified).
    Ready,
}

impl GossipKind {
    fn as_u8(self) -> u8 {
        match self {
            GossipKind::Send => 0,
            GossipKind::Echo => 1,
            GossipKind::Ready => 2,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(GossipKind::Send),
            1 => Some(GossipKind::Echo),
            2 => Some(GossipKind::Ready),
            _ => None,
        }
    }
}

/// Deterministic flooding id of a gossip frame: FNV-1a over the
/// identifying tuple, masked under [`BYZ_ID_TAG`]. Identical on every
/// engine, so copies of one frame arriving over different disjoint paths
/// dedup against each other.
#[must_use]
pub fn gossip_frame_id(kind: GossipKind, witness: u32, tag: ByzTag, dig: u64) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(&[kind.as_u8()]);
    mix(&witness.to_be_bytes());
    mix(&tag.origin.to_be_bytes());
    mix(&tag.nonce.to_be_bytes());
    mix(&dig.to_be_bytes());
    BYZ_ID_TAG | (h & BYZ_ID_MASK)
}

/// One Bracha protocol message, before wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipFrame {
    /// Protocol step.
    pub kind: GossipKind,
    /// The node vouching for this frame (unforgeable for correct nodes).
    pub witness: u32,
    /// The broadcast instance this frame is about.
    pub tag: ByzTag,
    /// Digest of the instance payload this frame attests to.
    pub digest: u64,
    /// Application payload: carried by `SEND` and `ECHO`, empty on `READY`.
    pub payload: Bytes,
}

impl GossipFrame {
    /// The frame's deterministic flooding broadcast id.
    #[must_use]
    pub fn id(&self) -> u64 {
        gossip_frame_id(self.kind, self.witness, self.tag, self.digest)
    }

    /// Encodes into a wire [`Message`] (byz extension carries the tag).
    #[must_use]
    pub fn to_message(&self) -> Message {
        let mut buf = BytesMut::with_capacity(1 + 8 + self.payload.len());
        buf.put_u8(self.kind.as_u8());
        buf.put_u64(self.digest);
        buf.put_slice(&self.payload);
        Message::new(self.id(), self.witness, buf.freeze()).with_byz(self.tag)
    }

    /// Decodes a gossip frame from a wire message; `None` when the message
    /// has no byz extension or a malformed gossip payload.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Self> {
        let tag = msg.byz?;
        let mut p = msg.payload.clone();
        if p.len() < 9 {
            return None;
        }
        let kind = GossipKind::from_u8(p.get_u8())?;
        let dig = p.get_u64();
        Some(GossipFrame {
            kind,
            witness: msg.origin,
            tag,
            digest: dig,
            payload: p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> ByzTag {
        ByzTag {
            origin: 3,
            nonce: 0x1000,
        }
    }

    #[test]
    fn digest_is_stable_and_payload_sensitive() {
        assert_eq!(digest(b"hello"), digest(b"hello"));
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_ne!(digest(b""), digest(b"\0"));
    }

    #[test]
    fn frame_round_trips_through_message() {
        let payload = Bytes::from_static(b"byzantine payload");
        let f = GossipFrame {
            kind: GossipKind::Echo,
            witness: 7,
            tag: tag(),
            digest: digest(b"byzantine payload"),
            payload,
        };
        let decoded = GossipFrame::from_message(&f.to_message()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn ready_frames_round_trip_with_empty_payload() {
        let f = GossipFrame {
            kind: GossipKind::Ready,
            witness: 2,
            tag: tag(),
            digest: 99,
            payload: Bytes::new(),
        };
        let m = f.to_message();
        assert_eq!(GossipFrame::from_message(&m), Some(f));
    }

    #[test]
    fn ids_are_byz_tagged_and_distinct_per_tuple_field() {
        let base = GossipFrame {
            kind: GossipKind::Echo,
            witness: 1,
            tag: tag(),
            digest: 5,
            payload: Bytes::new(),
        };
        assert_ne!(base.id() & BYZ_ID_TAG, 0, "bit 56 set");
        assert_eq!(base.id() >> 57, 0, "no control-tag bits");
        let mut other = base.clone();
        other.kind = GossipKind::Ready;
        assert_ne!(base.id(), other.id(), "kind distinguishes");
        let mut other = base.clone();
        other.witness = 2;
        assert_ne!(base.id(), other.id(), "witness distinguishes");
        let mut other = base.clone();
        other.tag.nonce += 1;
        assert_ne!(base.id(), other.id(), "nonce distinguishes");
        let mut other = base.clone();
        other.digest += 1;
        assert_ne!(base.id(), other.id(), "digest distinguishes");
    }

    #[test]
    fn replayed_frame_has_identical_id() {
        // A byte-identical replay maps to the same broadcast id, so
        // flooding dedup absorbs it — replay resistance for free.
        let f = GossipFrame {
            kind: GossipKind::Send,
            witness: 3,
            tag: tag(),
            digest: digest(b"x"),
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(
            f.to_message().broadcast_id,
            f.clone().to_message().broadcast_id
        );
    }

    #[test]
    fn non_byz_messages_do_not_decode() {
        let m = Message::new(1, 2, Bytes::from_static(b"plain data"));
        assert_eq!(GossipFrame::from_message(&m), None);
    }

    #[test]
    fn truncated_gossip_payload_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"short")).with_byz(tag());
        assert_eq!(GossipFrame::from_message(&m), None);
    }
}
