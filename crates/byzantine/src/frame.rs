//! Gossip frame codec: Bracha protocol messages as flooding broadcasts.
//!
//! Every protocol step (SEND / ECHO / READY) is one [`GossipFrame`],
//! disseminated by flooding it over the LHG overlay like any other
//! broadcast. A frame rides in a [`Message`] as:
//!
//! ```text
//! broadcast_id : gossip_frame_id(kind, witness, tag, digest) — BYZ-tagged
//! origin       : the witness (who vouches for this frame)
//! payload      : [kind u8 | digest u64 | application payload…]
//! byz ext      : the instance tag (claimed origin + nonce)
//! ```
//!
//! The broadcast id is a deterministic hash of the frame's identifying
//! tuple with bit 56 ([`BYZ_ID_TAG`]) set, so (a) flooding dedup works on
//! every engine without extra state, (b) replayed frames are absorbed by
//! the same dedup, and (c) the TCP runtime's frame classifier can route
//! byz gossip without decoding payloads.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lhg_net::message::{ByzTag, Message};

use crate::engine::{InstanceSummary, Phase};

/// Tag bit marking a broadcast id as Byzantine gossip (bit 56 — below the
/// TCP runtime's control tags in bits 57..64, above its data id space).
/// The numeric value is [`lhg_net::wirecost::BYZ_TAG`], the canonical home
/// of the class-tag bits, so wire-cost accounting classifies byz gossip
/// without this crate in its dependency graph.
pub const BYZ_ID_TAG: u64 = lhg_net::wirecost::BYZ_TAG;

/// Mask selecting the 56 hash bits of a byz gossip id.
pub const BYZ_ID_MASK: u64 = BYZ_ID_TAG - 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a digest of an application payload. Not cryptographic — the
/// "signed-enough" model assumes attribution is unforgeable, and the
/// digest only has to distinguish payloads a traitor actually sends.
#[must_use]
pub fn digest(payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The three Bracha protocol steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GossipKind {
    /// The origin's initial dissemination of the payload.
    Send,
    /// A witness attests it saw a `SEND` with this digest.
    Echo,
    /// A witness attests the digest is echo-certified (or amplified).
    Ready,
}

impl GossipKind {
    fn as_u8(self) -> u8 {
        match self {
            GossipKind::Send => 0,
            GossipKind::Echo => 1,
            GossipKind::Ready => 2,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(GossipKind::Send),
            1 => Some(GossipKind::Echo),
            2 => Some(GossipKind::Ready),
            _ => None,
        }
    }
}

/// Deterministic flooding id of a gossip frame: FNV-1a over the
/// identifying tuple, masked under [`BYZ_ID_TAG`]. Identical on every
/// engine, so copies of one frame arriving over different disjoint paths
/// dedup against each other.
#[must_use]
pub fn gossip_frame_id(kind: GossipKind, witness: u32, tag: ByzTag, dig: u64) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(&[kind.as_u8()]);
    mix(&witness.to_be_bytes());
    mix(&tag.origin.to_be_bytes());
    mix(&tag.nonce.to_be_bytes());
    mix(&dig.to_be_bytes());
    BYZ_ID_TAG | (h & BYZ_ID_MASK)
}

/// One Bracha protocol message, before wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipFrame {
    /// Protocol step.
    pub kind: GossipKind,
    /// The node vouching for this frame (unforgeable for correct nodes).
    pub witness: u32,
    /// The broadcast instance this frame is about.
    pub tag: ByzTag,
    /// Digest of the instance payload this frame attests to.
    pub digest: u64,
    /// Application payload: carried by `SEND` and `ECHO`, empty on `READY`.
    pub payload: Bytes,
}

impl GossipFrame {
    /// The frame's deterministic flooding broadcast id.
    #[must_use]
    pub fn id(&self) -> u64 {
        gossip_frame_id(self.kind, self.witness, self.tag, self.digest)
    }

    /// Encodes into a wire [`Message`] (byz extension carries the tag).
    #[must_use]
    pub fn to_message(&self) -> Message {
        let mut buf = BytesMut::with_capacity(1 + 8 + self.payload.len());
        buf.put_u8(self.kind.as_u8());
        buf.put_u64(self.digest);
        buf.put_slice(&self.payload);
        Message::new(self.id(), self.witness, buf.freeze()).with_byz(self.tag)
    }

    /// Decodes a gossip frame from a wire message; `None` when the message
    /// has no byz extension or a malformed gossip payload.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Self> {
        let tag = msg.byz?;
        let mut p = msg.payload.clone();
        if p.len() < 9 {
            return None;
        }
        let kind = GossipKind::from_u8(p.get_u8())?;
        let dig = p.get_u64();
        Some(GossipFrame {
            kind,
            witness: msg.origin,
            tag,
            digest: dig,
            payload: p,
        })
    }
}

// Payload kind bytes of the catch-up frames. Deliberately outside
// `GossipKind::from_u8`'s range so `GossipFrame::from_message` rejects
// them and the two codecs can share one wire slot without ambiguity.
const KIND_CATCHUP_PULL: u8 = 3;
const KIND_CATCHUP_PUSH: u8 = 4;

/// Nonce base for catch-up frame tags, far above application nonces and
/// the traitors' forged-instance bases.
pub const CATCHUP_NONCE_BASE: u64 = 0xCA7C_0000_0000;

fn phase_to_u8(p: Phase) -> u8 {
    match p {
        Phase::Init => 0,
        Phase::Echoed => 1,
        Phase::Readied => 2,
        Phase::Delivered => 3,
    }
}

fn phase_from_u8(b: u8) -> Option<Phase> {
    match b {
        0 => Some(Phase::Init),
        1 => Some(Phase::Echoed),
        2 => Some(Phase::Readied),
        3 => Some(Phase::Delivered),
        _ => None,
    }
}

/// Encodes a summary list for the wire:
/// `[count u32 | per item: origin u32, nonce u64, phase u8, digest u64,
/// payload_len u32, payload…]`. Shared by the sim's catch-up pushes and
/// the TCP runtime's SYNC snapshot extension.
#[must_use]
pub fn encode_summaries(items: &[InstanceSummary]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + items.len() * 25);
    buf.put_u32(u32::try_from(items.len()).unwrap_or(u32::MAX));
    for item in items {
        buf.put_u32(item.tag.origin);
        buf.put_u64(item.tag.nonce);
        buf.put_u8(phase_to_u8(item.phase));
        buf.put_u64(item.digest);
        buf.put_u32(u32::try_from(item.payload.len()).unwrap_or(u32::MAX));
        buf.put_slice(&item.payload);
    }
    buf.freeze()
}

/// Decodes a summary list; `None` on any truncation, trailing garbage, or
/// out-of-range phase byte. Never panics on malformed input.
#[must_use]
pub fn decode_summaries(b: &[u8]) -> Option<Vec<InstanceSummary>> {
    fn take<'a>(p: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if p.len() < n {
            return None;
        }
        let (head, rest) = p.split_at(n);
        *p = rest;
        Some(head)
    }
    fn take_u32(p: &mut &[u8]) -> Option<u32> {
        take(p, 4).map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }
    fn take_u64(p: &mut &[u8]) -> Option<u64> {
        take(p, 8).map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    let mut p = b;
    let count = take_u32(&mut p)? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let origin = take_u32(&mut p)?;
        let nonce = take_u64(&mut p)?;
        let phase = phase_from_u8(take(&mut p, 1)?[0])?;
        let dig = take_u64(&mut p)?;
        let len = take_u32(&mut p)? as usize;
        let payload = Bytes::copy_from_slice(take(&mut p, len)?);
        out.push(InstanceSummary {
            tag: ByzTag { origin, nonce },
            phase,
            digest: dig,
            payload,
        });
    }
    if !p.is_empty() {
        return None;
    }
    Some(out)
}

/// A rejoined node's flooded solicitation for catch-up summaries
/// (simulator transport; the TCP runtime solicits over its SYNC
/// handshake instead). The `round` counter distinguishes successive
/// solicitations of the same node so each floods under a fresh id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatchupPull {
    /// The rejoined node asking to be caught up.
    pub requester: u32,
    /// Solicitation round (one per revival / re-ask).
    pub round: u32,
}

impl CatchupPull {
    /// Deterministic flooding id.
    #[must_use]
    pub fn id(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &b in [KIND_CATCHUP_PULL]
            .iter()
            .chain(self.requester.to_be_bytes().iter())
            .chain(self.round.to_be_bytes().iter())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        BYZ_ID_TAG | (h & BYZ_ID_MASK)
    }

    /// Encodes into a wire [`Message`].
    #[must_use]
    pub fn to_message(&self) -> Message {
        let mut buf = BytesMut::with_capacity(5);
        buf.put_u8(KIND_CATCHUP_PULL);
        buf.put_u32(self.round);
        Message::new(self.id(), self.requester, buf.freeze()).with_byz(ByzTag {
            origin: self.requester,
            nonce: CATCHUP_NONCE_BASE + u64::from(self.round),
        })
    }

    /// Decodes from a wire message; `None` when it is not a pull.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Self> {
        let mut p = msg.payload.clone();
        if p.len() != 5 || p.get_u8() != KIND_CATCHUP_PULL {
            return None;
        }
        Some(CatchupPull {
            requester: msg.origin,
            round: p.get_u32(),
        })
    }
}

/// One node's full summary statement, flooded in reply to a
/// [`CatchupPull`]. Only `requester` ingests it; everyone relays it so
/// the attestation reaches the rejoiner over multi-hop paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatchupPush {
    /// The node attesting these summaries.
    pub witness: u32,
    /// The rejoined node this reply is for.
    pub requester: u32,
    /// The solicitation round being answered.
    pub round: u32,
    /// The witness's per-instance summaries.
    pub items: Vec<InstanceSummary>,
}

impl CatchupPush {
    /// Deterministic flooding id (distinct per witness, so every node's
    /// reply floods independently).
    #[must_use]
    pub fn id(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &b in [KIND_CATCHUP_PUSH]
            .iter()
            .chain(self.witness.to_be_bytes().iter())
            .chain(self.requester.to_be_bytes().iter())
            .chain(self.round.to_be_bytes().iter())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        BYZ_ID_TAG | (h & BYZ_ID_MASK)
    }

    /// Encodes into a wire [`Message`].
    #[must_use]
    pub fn to_message(&self) -> Message {
        let body = encode_summaries(&self.items);
        let mut buf = BytesMut::with_capacity(9 + body.len());
        buf.put_u8(KIND_CATCHUP_PUSH);
        buf.put_u32(self.requester);
        buf.put_u32(self.round);
        buf.put_slice(&body);
        Message::new(self.id(), self.witness, buf.freeze()).with_byz(ByzTag {
            origin: self.requester,
            nonce: CATCHUP_NONCE_BASE + u64::from(self.round),
        })
    }

    /// Decodes from a wire message; `None` when it is not a push or its
    /// summary body is malformed.
    #[must_use]
    pub fn from_message(msg: &Message) -> Option<Self> {
        let mut p = msg.payload.clone();
        if p.len() < 9 || p.get_u8() != KIND_CATCHUP_PUSH {
            return None;
        }
        let requester = p.get_u32();
        let round = p.get_u32();
        let items = decode_summaries(&p)?;
        Some(CatchupPush {
            witness: msg.origin,
            requester,
            round,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> ByzTag {
        ByzTag {
            origin: 3,
            nonce: 0x1000,
        }
    }

    #[test]
    fn digest_is_stable_and_payload_sensitive() {
        assert_eq!(digest(b"hello"), digest(b"hello"));
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_ne!(digest(b""), digest(b"\0"));
    }

    #[test]
    fn frame_round_trips_through_message() {
        let payload = Bytes::from_static(b"byzantine payload");
        let f = GossipFrame {
            kind: GossipKind::Echo,
            witness: 7,
            tag: tag(),
            digest: digest(b"byzantine payload"),
            payload,
        };
        let decoded = GossipFrame::from_message(&f.to_message()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn ready_frames_round_trip_with_empty_payload() {
        let f = GossipFrame {
            kind: GossipKind::Ready,
            witness: 2,
            tag: tag(),
            digest: 99,
            payload: Bytes::new(),
        };
        let m = f.to_message();
        assert_eq!(GossipFrame::from_message(&m), Some(f));
    }

    #[test]
    fn ids_are_byz_tagged_and_distinct_per_tuple_field() {
        let base = GossipFrame {
            kind: GossipKind::Echo,
            witness: 1,
            tag: tag(),
            digest: 5,
            payload: Bytes::new(),
        };
        assert_ne!(base.id() & BYZ_ID_TAG, 0, "bit 56 set");
        assert_eq!(base.id() >> 57, 0, "no control-tag bits");
        let mut other = base.clone();
        other.kind = GossipKind::Ready;
        assert_ne!(base.id(), other.id(), "kind distinguishes");
        let mut other = base.clone();
        other.witness = 2;
        assert_ne!(base.id(), other.id(), "witness distinguishes");
        let mut other = base.clone();
        other.tag.nonce += 1;
        assert_ne!(base.id(), other.id(), "nonce distinguishes");
        let mut other = base.clone();
        other.digest += 1;
        assert_ne!(base.id(), other.id(), "digest distinguishes");
    }

    #[test]
    fn replayed_frame_has_identical_id() {
        // A byte-identical replay maps to the same broadcast id, so
        // flooding dedup absorbs it — replay resistance for free.
        let f = GossipFrame {
            kind: GossipKind::Send,
            witness: 3,
            tag: tag(),
            digest: digest(b"x"),
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(
            f.to_message().broadcast_id,
            f.clone().to_message().broadcast_id
        );
    }

    #[test]
    fn non_byz_messages_do_not_decode() {
        let m = Message::new(1, 2, Bytes::from_static(b"plain data"));
        assert_eq!(GossipFrame::from_message(&m), None);
    }

    #[test]
    fn truncated_gossip_payload_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"short")).with_byz(tag());
        assert_eq!(GossipFrame::from_message(&m), None);
    }

    fn sample_summaries() -> Vec<InstanceSummary> {
        vec![
            InstanceSummary {
                tag: ByzTag {
                    origin: 1,
                    nonce: 7,
                },
                phase: Phase::Delivered,
                digest: digest(b"abc"),
                payload: Bytes::from_static(b"abc"),
            },
            InstanceSummary {
                tag: ByzTag {
                    origin: 2,
                    nonce: 0x1000,
                },
                phase: Phase::Readied,
                digest: 42,
                payload: Bytes::new(),
            },
        ]
    }

    #[test]
    fn summaries_round_trip_including_empty() {
        let items = sample_summaries();
        assert_eq!(decode_summaries(&encode_summaries(&items)), Some(items));
        assert_eq!(decode_summaries(&encode_summaries(&[])), Some(Vec::new()));
    }

    #[test]
    fn malformed_summaries_are_rejected_not_panicked() {
        let good = encode_summaries(&sample_summaries());
        assert_eq!(decode_summaries(&[]), None, "empty buffer");
        assert_eq!(decode_summaries(&good[..good.len() - 1]), None, "truncated");
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert_eq!(decode_summaries(&trailing), None, "trailing garbage");
        let mut bad_phase = good.to_vec();
        bad_phase[4 + 12] = 9; // first item's phase byte out of range
        assert_eq!(decode_summaries(&bad_phase), None, "phase out of range");
        // Count claiming more items than the buffer holds.
        let mut lying = BytesMut::new();
        lying.put_u32(1000);
        assert_eq!(decode_summaries(&lying.freeze()), None);
    }

    #[test]
    fn catchup_pull_round_trips_and_is_not_gossip() {
        let pull = CatchupPull {
            requester: 9,
            round: 2,
        };
        let m = pull.to_message();
        assert_eq!(CatchupPull::from_message(&m), Some(pull.clone()));
        assert_eq!(GossipFrame::from_message(&m), None, "kind byte 3 rejected");
        assert_eq!(CatchupPush::from_message(&m), None);
        assert_ne!(m.broadcast_id & BYZ_ID_TAG, 0, "byz-tagged id");
        let other = CatchupPull {
            requester: 9,
            round: 3,
        };
        assert_ne!(pull.id(), other.id(), "round distinguishes the flood id");
    }

    #[test]
    fn catchup_push_round_trips_and_ids_differ_per_witness() {
        let push = CatchupPush {
            witness: 4,
            requester: 9,
            round: 1,
            items: sample_summaries(),
        };
        let m = push.to_message();
        assert_eq!(CatchupPush::from_message(&m), Some(push.clone()));
        assert_eq!(GossipFrame::from_message(&m), None, "kind byte 4 rejected");
        assert_eq!(CatchupPull::from_message(&m), None);
        let mut other = push.clone();
        other.witness = 5;
        assert_ne!(push.id(), other.id(), "each witness's reply floods alone");
    }
}
