//! Robustness tests for the wire codec: decoding must never panic, the
//! encode/decode pair must round-trip arbitrary payloads (with or without
//! the trace extension), and legacy frames must keep decoding unchanged.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;

use lhg_net::codec::{decode_frame, encode_frame};
use lhg_net::fifo::{fifo_id, fifo_parts};
use lhg_net::message::{ByzTag, Message, BYZ_TAG_LEN, TRACE_EXT_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(raw in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Success or failure are both fine; panics are not.
        let _ = Message::decode(Bytes::from(raw));
    }

    #[test]
    fn encode_decode_round_trips(
        id in any::<u64>(),
        origin in any::<u32>(),
        hops in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        traced in any::<bool>(),
        trace_id in any::<u64>(),
        sequenced in any::<bool>(),
        seq in any::<u64>(),
        tagged in any::<bool>(),
        byz_origin in any::<u32>(),
        byz_nonce in any::<u64>(),
    ) {
        let msg = Message {
            broadcast_id: id,
            origin,
            hops,
            payload: Bytes::from(payload),
            trace: traced.then_some(trace_id),
            link_seq: sequenced.then_some(seq),
            byz: tagged.then_some(ByzTag { origin: byz_origin, nonce: byz_nonce }),
        };
        let decoded = Message::decode(msg.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn byz_tagged_frames_round_trip_through_codec(
        id in any::<u64>(),
        byz_origin in any::<u32>(),
        byz_nonce in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let tag = ByzTag { origin: byz_origin, nonce: byz_nonce };
        let msg = Message::new(id, 3, Bytes::from(payload)).with_byz(tag);
        let frame = encode_frame(&msg);
        let decoded = decode_frame(&frame).expect("framed encoding decodes");
        prop_assert_eq!(decoded.byz, Some(tag));
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn byz_truncated_tags_are_rejected(
        byz_nonce in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 1usize..BYZ_TAG_LEN,
    ) {
        // Any partial byz tag — 1..11 of its 12 bytes missing — must fail
        // to decode rather than misparse as a shorter extension.
        let msg = Message::new(5, 1, Bytes::from(payload))
            .with_byz(ByzTag { origin: 6, nonce: byz_nonce });
        let enc = msg.encode();
        prop_assert_eq!(Message::decode(enc.slice(0..enc.len() - cut)), None);
    }

    #[test]
    fn traced_frames_round_trip_through_codec(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = Message::new(id, 3, Bytes::from(payload)).with_trace(trace_id);
        let frame = encode_frame(&msg);
        let decoded = decode_frame(&frame).expect("framed encoding decodes");
        prop_assert_eq!(decoded.trace, Some(trace_id));
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn legacy_frames_without_extension_still_decode(
        id in any::<u64>(),
        origin in any::<u32>(),
        hops in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Build the pre-extension wire image by hand: header + payload only.
        let mut raw = BytesMut::with_capacity(20 + payload.len());
        raw.put_u64(id);
        raw.put_u32(origin);
        raw.put_u32(hops);
        raw.put_u32(payload.len() as u32);
        raw.put_slice(&payload);
        let decoded = Message::decode(raw.freeze()).expect("legacy frame decodes");
        prop_assert_eq!(decoded.trace, None);
        prop_assert_eq!(decoded.byz, None);
        prop_assert_eq!(decoded.broadcast_id, id);
        prop_assert_eq!(decoded.payload, Bytes::from(payload));
    }

    #[test]
    fn unknown_extension_flags_are_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flag in any::<u8>(),
        ext_id in any::<u64>(),
    ) {
        // Force a flag with an unknown bit: setting bit 3 keeps the full
        // range of "wrong" flags without a rejection filter (bits 0..2 are
        // the known trace, link-seq and byz extensions).
        let flag = flag | 0x08;
        assert!(flag & !lhg_net::message::KNOWN_EXT_FLAGS != 0);
        let msg = Message::new(11, 2, Bytes::from(payload));
        let mut raw = BytesMut::from(&msg.encode()[..]);
        raw.put_u8(flag);
        raw.put_u64(ext_id);
        prop_assert_eq!(Message::decode(raw.freeze()), None);
    }

    #[test]
    fn truncated_encodings_are_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        traced in any::<bool>(),
        cut in 1usize..16,
    ) {
        let mut msg = Message::new(7, 3, Bytes::from(payload));
        if traced {
            msg = msg.with_trace(99);
        }
        let enc = msg.encode();
        // Cutting the full extension off a traced frame would yield a valid
        // legacy frame, so stop one byte short of that.
        let cut = cut.min(if traced { TRACE_EXT_LEN - 1 } else { enc.len() });
        let truncated = enc.slice(0..enc.len() - cut);
        prop_assert_eq!(Message::decode(truncated), None);
    }

    #[test]
    fn fifo_id_round_trips(origin in any::<u32>(), seq in any::<u32>()) {
        prop_assert_eq!(fifo_parts(fifo_id(origin, seq)), (origin, seq));
    }
}
