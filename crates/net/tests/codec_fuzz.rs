//! Robustness tests for the wire codec: decoding must never panic and the
//! encode/decode pair must round-trip arbitrary payloads.

use bytes::Bytes;
use proptest::prelude::*;

use lhg_net::fifo::{fifo_id, fifo_parts};
use lhg_net::message::Message;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(raw in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Success or failure are both fine; panics are not.
        let _ = Message::decode(Bytes::from(raw));
    }

    #[test]
    fn encode_decode_round_trips(
        id in any::<u64>(),
        origin in any::<u32>(),
        hops in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = Message {
            broadcast_id: id,
            origin,
            hops,
            payload: Bytes::from(payload),
        };
        let decoded = Message::decode(msg.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_encodings_are_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 1usize..16,
    ) {
        let msg = Message::new(7, 3, Bytes::from(payload));
        let enc = msg.encode();
        let cut = cut.min(enc.len());
        let truncated = enc.slice(0..enc.len() - cut);
        prop_assert_eq!(Message::decode(truncated), None);
    }

    #[test]
    fn fifo_id_round_trips(origin in any::<u32>(), seq in any::<u32>()) {
        prop_assert_eq!(fifo_parts(fifo_id(origin, seq)), (origin, seq));
    }
}
