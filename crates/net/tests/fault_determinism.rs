//! Property tests pinning the determinism contract of
//! [`lhg_net::fault::FaultInjector`]: every drop/duplicate/delay decision
//! is a pure function of `(seed, from, to, seq)`. Chaos reproducibility
//! rests on this — the runner prints a seed, and replaying that seed must
//! replay every fault, no matter how the engines interleave their queries.

use std::sync::Arc;
use std::thread;

use lhg_net::fault::{FaultInjector, LinkFaults};
use proptest::prelude::*;

/// A lossy-but-sane rate set, mirroring the chaos planner's lossy family.
/// Probabilities are drawn as per-mille integers (the vendored proptest
/// has no float strategies) and mapped into `[0, 0.6)` / `[0, 0.4)`.
fn arb_rates() -> impl Strategy<Value = LinkFaults> {
    (
        (0u64..600, 0u64..400),
        (0u64..3_000, 0u64..600, 0u64..5_000),
    )
        .prop_map(
            |((drop, duplicate), (extra_delay_us, reorder, reorder_window_us))| LinkFaults {
                drop: drop as f64 / 1_000.0,
                duplicate: duplicate as f64 / 1_000.0,
                extra_delay_us,
                reorder: reorder as f64 / 1_000.0,
                reorder_window_us,
            },
        )
}

/// Frame keys: directed link endpoints plus a per-link sequence number.
fn arb_keys() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    proptest::collection::vec((0u32..16, 0u32..16, 0u64..10_000), 1..64)
}

fn injector(seed: u64, rates: LinkFaults) -> FaultInjector {
    let mut inj = FaultInjector::new(seed);
    inj.set_default_rates(rates);
    inj
}

proptest! {
    /// Re-querying the same frame key yields the same decision, whatever
    /// order the keys are visited in and however many times each is asked.
    #[test]
    fn decisions_ignore_call_order(seed in any::<u64>(), rates in arb_rates(), keys in arb_keys()) {
        let inj = injector(seed, rates);
        let forward: Vec<_> = keys
            .iter()
            .map(|&(f, t, s)| inj.decide(f, t, 0, s))
            .collect();
        // Visit in reverse, with a second redundant query interleaved.
        let backward: Vec<_> = keys
            .iter()
            .rev()
            .map(|&(f, t, s)| {
                let _ = inj.decide(t, f, 0, s); // unrelated link: must not perturb
                inj.decide(f, t, 0, s)
            })
            .collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        prop_assert_eq!(forward, backward);
    }

    /// Two injectors built from the same seed and rates agree on every
    /// frame, even when one is hammered from several threads at once —
    /// the decision function holds no mutable state to race on.
    #[test]
    fn threads_cannot_perturb_decisions(seed in any::<u64>(), rates in arb_rates(), keys in arb_keys()) {
        let reference = injector(seed, rates);
        let expected: Vec<_> = keys
            .iter()
            .map(|&(f, t, s)| reference.decide(f, t, 0, s))
            .collect();

        let shared = Arc::new(injector(seed, rates));
        let mut handles = Vec::new();
        for offset in 0..4usize {
            let inj = Arc::clone(&shared);
            let keys = keys.clone();
            handles.push(thread::spawn(move || {
                // Each thread starts at a different point in the key list
                // so queries genuinely interleave.
                let n = keys.len();
                (0..n)
                    .map(|i| {
                        let (f, t, s) = keys[(i + offset) % n];
                        ((i + offset) % n, inj.decide(f, t, 0, s))
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (idx, decision) in handle.join().expect("worker panicked") {
                prop_assert_eq!(&decision, &expected[idx]);
            }
        }
    }

    /// Seq numbers index independent decisions: permuting which seq is
    /// asked first never changes any individual outcome (no hidden
    /// stream/counter semantics).
    #[test]
    fn seq_space_is_random_access(seed in any::<u64>(), rates in arb_rates(), seqs in proptest::collection::vec(0u64..100_000, 2..32)) {
        let inj = injector(seed, rates);
        let mut shuffled = seqs.clone();
        shuffled.reverse();
        shuffled.rotate_left(1);
        let by_seq: std::collections::HashMap<u64, Vec<u64>> = shuffled
            .iter()
            .map(|&s| (s, inj.decide(1, 2, 0, s)))
            .collect();
        for &s in &seqs {
            prop_assert_eq!(&inj.decide(1, 2, 0, s), &by_seq[&s]);
        }
    }
}
