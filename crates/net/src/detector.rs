//! Heartbeat failure detection over the overlay.
//!
//! Flooding tolerates k−1 *silent* crashes, but a long-lived overlay also
//! wants to know **who** crashed (e.g. to trigger the membership
//! maintenance in `lhg-core::overlay`). This module implements the classic
//! heartbeat detector on the timer-capable simulator: every process
//! heartbeats its overlay neighbors each `period` and suspects a neighbor
//! it has not heard from within `timeout`.
//!
//! With `timeout > period + max network delay` the detector is **accurate**
//! (never suspects a live neighbor) and **complete** (every neighbor of a
//! crashed process eventually suspects it) — both properties are tested.
//!
//! Detector output travels through the simulator's delivery stream as
//! tagged pseudo-messages; [`DetectorEvent::from_delivery`] decodes them.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use lhg_graph::NodeId;

use crate::message::Message;
use crate::sim::{Context, Delivery, Process, Time};

/// Tag bit marking heartbeat wire messages.
const HEARTBEAT_TAG: u64 = 1 << 60;
/// Tag bit marking suspicion events in the delivery stream.
const SUSPECT_TAG: u64 = 1 << 61;
/// Tag bit marking trust-restored events in the delivery stream.
const RESTORE_TAG: u64 = 1 << 62;
/// Timer token for the heartbeat tick.
const TICK: u64 = 1;

/// Timing parameters of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats (µs).
    pub period: Time,
    /// Silence threshold before suspecting a neighbor (µs).
    pub timeout: Time,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        // 1 ms heartbeats, 3.5 ms patience: accurate for links ≤ 2.5 ms.
        HeartbeatConfig {
            period: 1_000,
            timeout: 3_500,
        }
    }
}

/// A decoded detector output event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEvent {
    /// `monitor` started suspecting `suspect` at `time`.
    Suspect {
        /// The process doing the suspecting.
        monitor: NodeId,
        /// The neighbor now suspected.
        suspect: NodeId,
        /// Simulated time of the state change.
        time: Time,
    },
    /// `monitor` trusts `suspect` again (a late heartbeat arrived).
    Restore {
        /// The process restoring trust.
        monitor: NodeId,
        /// The neighbor trusted again.
        suspect: NodeId,
        /// Simulated time of the state change.
        time: Time,
    },
}

impl DetectorEvent {
    /// Decodes a delivery-stream record produced by [`HeartbeatProcess`];
    /// `None` for ordinary application deliveries.
    #[must_use]
    pub fn from_delivery(d: &Delivery) -> Option<DetectorEvent> {
        let suspect = NodeId((d.broadcast_id & 0xFFFF_FFFF) as usize);
        if d.broadcast_id & SUSPECT_TAG != 0 {
            Some(DetectorEvent::Suspect {
                monitor: d.node,
                suspect,
                time: d.time,
            })
        } else if d.broadcast_id & RESTORE_TAG != 0 {
            Some(DetectorEvent::Restore {
                monitor: d.node,
                suspect,
                time: d.time,
            })
        } else {
            None
        }
    }
}

/// Heartbeat failure-detector process (monitors overlay neighbors only).
pub struct HeartbeatProcess {
    config: HeartbeatConfig,
    last_heard: HashMap<NodeId, Time>,
    suspected: HashSet<NodeId>,
}

impl HeartbeatProcess {
    /// Creates a detector with the given timing.
    #[must_use]
    pub fn new(config: HeartbeatConfig) -> Self {
        HeartbeatProcess {
            config,
            last_heard: HashMap::new(),
            suspected: HashSet::new(),
        }
    }

    fn beat(&self, ctx: &mut Context<'_>) {
        let me = ctx.id().index() as u32;
        for &w in &ctx.neighbors().to_vec() {
            ctx.send(
                w,
                Message::new(HEARTBEAT_TAG | u64::from(me), me, Bytes::new()),
            );
        }
    }

    fn check(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        for &w in &ctx.neighbors().to_vec() {
            let heard = self.last_heard.get(&w).copied().unwrap_or(0);
            if now.saturating_sub(heard) > self.config.timeout && self.suspected.insert(w) {
                let me = ctx.id().index() as u32;
                ctx.deliver(Message::new(
                    SUSPECT_TAG | w.index() as u64,
                    me,
                    Bytes::new(),
                ));
            }
        }
    }
}

impl Process for HeartbeatProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Grace: treat time 0 as "heard from everyone".
        for &w in ctx.neighbors() {
            self.last_heard.insert(w, 0);
        }
        self.beat(ctx);
        ctx.set_timer(self.config.period, TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        if msg.broadcast_id & HEARTBEAT_TAG != 0 {
            self.last_heard.insert(from, ctx.now());
            if self.suspected.remove(&from) {
                let me = ctx.id().index() as u32;
                ctx.deliver(Message::new(
                    RESTORE_TAG | from.index() as u64,
                    me,
                    Bytes::new(),
                ));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, TICK);
        self.beat(ctx);
        self.check(ctx);
        ctx.set_timer(self.config.period, TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkModel, Simulation};
    use lhg_graph::Graph;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn detectors(n: usize, config: HeartbeatConfig) -> Vec<Box<dyn Process>> {
        (0..n)
            .map(|_| -> Box<dyn Process> { Box::new(HeartbeatProcess::new(config)) })
            .collect()
    }

    fn events(report: &crate::sim::SimReport) -> Vec<DetectorEvent> {
        report
            .deliveries
            .iter()
            .filter_map(DetectorEvent::from_delivery)
            .collect()
    }

    #[test]
    fn no_failures_no_suspicions() {
        let g = cycle(8);
        let config = HeartbeatConfig::default();
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 500,
                jitter_us: 200,
            },
            3,
        );
        let report = sim.run(detectors(8, config), 50_000);
        assert!(
            events(&report).is_empty(),
            "accuracy: {:?}",
            events(&report)
        );
        assert!(report.messages_sent > 8 * 2 * 40, "heartbeats kept flowing");
    }

    #[test]
    fn crashed_node_is_suspected_by_both_neighbors() {
        let g = cycle(8);
        let config = HeartbeatConfig::default();
        let crash_time = 10_000;
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 500,
                jitter_us: 0,
            },
            3,
        );
        sim.crash_at(NodeId(3), crash_time);
        let report = sim.run(detectors(8, config), 60_000);
        let evs = events(&report);
        let suspects: Vec<(NodeId, NodeId, Time)> = evs
            .iter()
            .filter_map(|e| match e {
                DetectorEvent::Suspect {
                    monitor,
                    suspect,
                    time,
                } => Some((*monitor, *suspect, *time)),
                DetectorEvent::Restore { .. } => None,
            })
            .collect();
        // Completeness: both neighbors of node 3 suspect it...
        let monitors: std::collections::BTreeSet<NodeId> =
            suspects.iter().map(|(m, _, _)| *m).collect();
        assert_eq!(
            monitors,
            [NodeId(2), NodeId(4)].into_iter().collect(),
            "{suspects:?}"
        );
        // ...and nobody else is ever suspected (accuracy).
        assert!(
            suspects.iter().all(|(_, s, _)| *s == NodeId(3)),
            "{suspects:?}"
        );
        // Detection happens after the crash but within timeout + 2 periods.
        for (_, _, t) in &suspects {
            assert!(*t > crash_time, "suspected before crash at {t}");
            assert!(
                *t <= crash_time + config.timeout + 2 * config.period,
                "slow detection at {t}"
            );
        }
        // No restores in fail-stop.
        assert!(evs
            .iter()
            .all(|e| matches!(e, DetectorEvent::Suspect { .. })));
    }

    #[test]
    fn too_aggressive_timeout_breaks_accuracy() {
        // Checks run at tick time; with heartbeats landing at k·period+100,
        // the observed silence at each check is period−100 = 900 > timeout.
        let g = cycle(6);
        let config = HeartbeatConfig {
            period: 1_000,
            timeout: 800,
        };
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 100,
                jitter_us: 0,
            },
            1,
        );
        let report = sim.run(detectors(6, config), 20_000);
        let evs = events(&report);
        assert!(
            evs.iter()
                .any(|e| matches!(e, DetectorEvent::Suspect { .. })),
            "an under-provisioned timeout must produce false suspicions"
        );
        assert!(
            evs.iter()
                .any(|e| matches!(e, DetectorEvent::Restore { .. })),
            "late heartbeats then restore trust"
        );
    }

    #[test]
    fn decode_ignores_ordinary_deliveries() {
        let d = Delivery {
            node: NodeId(1),
            time: 5,
            hops: 0,
            broadcast_id: 42,
            parent: None,
            trace: None,
        };
        assert_eq!(DetectorEvent::from_delivery(&d), None);
    }
}
