//! Reliable broadcast by flooding over an overlay — the protocol the LHG
//! topologies exist to serve, as a [`Process`] for the discrete-event
//! simulator.
//!
//! Each process forwards every broadcast it has not seen before to all
//! neighbors except the one it arrived from, and delivers it locally once.
//! Over a k-connected overlay this delivers to every correct process
//! despite up to k−1 fail-stop processes (experiment E15).

use bytes::Bytes;

use lhg_graph::{Graph, NodeId};

use crate::message::Message;
use crate::seen::SeenSet;
use crate::sim::{Context, LinkModel, Process, SimReport, Simulation, Time};

/// Flooding reliable-broadcast process. Dedup state is bounded by a
/// [`SeenSet`] so long-lived relays do not grow memory without limit.
pub struct FloodProcess {
    /// Broadcast this process originates at time 0, if any.
    originate: Option<(u64, Bytes)>,
    seen: SeenSet,
}

impl FloodProcess {
    /// A process that only relays.
    #[must_use]
    pub fn relay() -> Self {
        FloodProcess {
            originate: None,
            seen: SeenSet::default(),
        }
    }

    /// A process that originates broadcast `id` with `payload` at time 0.
    #[must_use]
    pub fn origin(id: u64, payload: Bytes) -> Self {
        FloodProcess {
            originate: Some((id, payload)),
            seen: SeenSet::default(),
        }
    }

    /// Like [`FloodProcess::relay`], retaining at most `cap` seen ids.
    #[must_use]
    pub fn relay_with_cap(cap: usize) -> Self {
        FloodProcess {
            originate: None,
            seen: SeenSet::new(cap),
        }
    }
}

impl Process for FloodProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some((id, payload)) = self.originate.take() {
            self.seen.insert(id);
            let msg = Message::new(id, ctx.id().index() as u32, payload);
            ctx.deliver(msg.clone());
            for &w in &ctx.neighbors().to_vec() {
                ctx.send(w, msg.clone());
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        if !self.seen.insert(msg.broadcast_id) {
            return; // duplicate
        }
        ctx.deliver(msg.clone());
        let fwd = msg.forwarded();
        for &w in &ctx.neighbors().to_vec() {
            if w != from {
                ctx.send(w, fwd.clone());
            }
        }
    }
}

/// Outcome of a full broadcast run over an overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    /// The raw simulator report.
    pub sim: SimReport,
    /// First delivery time per node (`None` = never delivered).
    pub first_delivery: Vec<Option<Time>>,
    /// Nodes that never crashed.
    pub correct_nodes: usize,
    /// Correct nodes that delivered.
    pub correct_delivered: usize,
}

impl BroadcastReport {
    /// `true` if every correct node delivered the broadcast.
    #[must_use]
    pub fn all_correct_delivered(&self) -> bool {
        self.correct_delivered == self.correct_nodes
    }

    /// Latest delivery time among correct nodes (0 when only the origin).
    #[must_use]
    pub fn latency(&self) -> Time {
        self.first_delivery
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Runs one flooding broadcast from `origin` over `graph` with the given
/// link model, crashing `crashes` (node, time) pairs.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or crashes at time 0.
#[must_use]
pub fn run_overlay_broadcast(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    link: LinkModel,
    crashes: &[(NodeId, Time)],
    seed: u64,
) -> BroadcastReport {
    let n = graph.node_count();
    assert!(origin.index() < n, "origin {origin} out of bounds");
    let mut sim = Simulation::new(graph, link, seed);
    let mut crashed = vec![false; n];
    for &(v, t) in crashes {
        assert!(!(v == origin && t == 0), "origin must be live at time 0");
        sim.crash_at(v, t);
        crashed[v.index()] = true;
    }
    let processes: Vec<Box<dyn Process>> = (0..n)
        .map(|v| -> Box<dyn Process> {
            if NodeId(v) == origin {
                Box::new(FloodProcess::origin(1, payload.clone()))
            } else {
                Box::new(FloodProcess::relay())
            }
        })
        .collect();
    let report = sim.run(processes, Time::MAX);
    let first_delivery = report.first_delivery_times(n);
    let mut correct_nodes = 0;
    let mut correct_delivered = 0;
    for v in 0..n {
        if !crashed[v] {
            correct_nodes += 1;
            if first_delivery[v].is_some() {
                correct_delivered += 1;
            }
        }
    }
    BroadcastReport {
        sim: report,
        first_delivery,
        correct_nodes,
        correct_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn no_jitter() -> LinkModel {
        LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
        }
    }

    #[test]
    fn broadcast_covers_cycle() {
        let g = cycle(8);
        let r = run_overlay_broadcast(&g, NodeId(0), Bytes::from_static(b"m"), no_jitter(), &[], 0);
        assert!(r.all_correct_delivered());
        // Farthest node is 4 hops away: latency = 400µs without jitter.
        assert_eq!(r.latency(), 400);
        assert_eq!(r.first_delivery[4], Some(400));
    }

    #[test]
    fn latency_tracks_hops_times_link_latency() {
        let g = cycle(12);
        let r = run_overlay_broadcast(&g, NodeId(0), Bytes::new(), no_jitter(), &[], 0);
        for v in 0..12usize {
            let hops = v.min(12 - v) as u64;
            assert_eq!(r.first_delivery[v], Some(hops * 100), "node {v}");
        }
    }

    #[test]
    fn one_crash_on_2_connected_overlay_is_tolerated() {
        let g = cycle(9);
        let r = run_overlay_broadcast(
            &g,
            NodeId(0),
            Bytes::new(),
            no_jitter(),
            &[(NodeId(4), 0)],
            0,
        );
        assert!(r.all_correct_delivered());
        assert_eq!(r.correct_nodes, 8);
    }

    #[test]
    fn two_crashes_split_the_cycle() {
        let g = cycle(9);
        let r = run_overlay_broadcast(
            &g,
            NodeId(0),
            Bytes::new(),
            no_jitter(),
            &[(NodeId(2), 0), (NodeId(7), 0)],
            0,
        );
        assert!(!r.all_correct_delivered());
        assert!(r.correct_delivered < r.correct_nodes);
    }

    #[test]
    fn dedup_keeps_message_count_linear_in_edges() {
        let g = cycle(10);
        let r = run_overlay_broadcast(&g, NodeId(0), Bytes::new(), no_jitter(), &[], 0);
        // Flooding sends at most 2 messages per edge.
        assert!(r.sim.messages_sent <= 2 * g.edge_count() as u64);
        assert!(r.sim.messages_sent >= g.edge_count() as u64 - 1);
    }

    #[test]
    fn deliveries_happen_once_per_node() {
        let g = cycle(6);
        let r = run_overlay_broadcast(&g, NodeId(0), Bytes::new(), no_jitter(), &[], 0);
        assert_eq!(r.sim.deliveries.len(), 6, "exactly one delivery per node");
    }

    #[test]
    fn capped_relay_never_double_delivers_within_retention_window() {
        // The eviction edge: node 0 floods ids 1..=6 at a relay capped to 4
        // seen ids (1 and 2 fall out of the window), then replays stale
        // copies of the two *most recent* ids. Those are still inside the
        // retention window, so the relay must suppress them — six ids, six
        // deliveries, no duplicates.
        struct Burst;
        impl Process for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for id in 1..=6u64 {
                    ctx.send(NodeId(1), Message::new(id, 0, Bytes::new()));
                }
                ctx.set_timer(10_000, 0);
            }
            fn on_message(&mut self, _: NodeId, _: Message, _: &mut Context<'_>) {}
            fn on_timer(&mut self, _: u64, ctx: &mut Context<'_>) {
                ctx.send(NodeId(1), Message::new(5, 0, Bytes::new()));
                ctx.send(NodeId(1), Message::new(6, 0, Bytes::new()));
            }
        }
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        let procs: Vec<Box<dyn Process>> =
            vec![Box::new(Burst), Box::new(FloodProcess::relay_with_cap(4))];
        let report = sim.run(procs, 1_000_000);
        let mut delivered: Vec<u64> = report.deliveries.iter().map(|d| d.broadcast_id).collect();
        delivered.sort_unstable();
        assert_eq!(
            delivered,
            vec![1, 2, 3, 4, 5, 6],
            "each id delivered exactly once"
        );
    }

    #[test]
    #[should_panic(expected = "origin must be live")]
    fn crashing_origin_at_zero_is_rejected() {
        let g = cycle(4);
        let _ = run_overlay_broadcast(
            &g,
            NodeId(0),
            Bytes::new(),
            no_jitter(),
            &[(NodeId(0), 0)],
            0,
        );
    }
}
