//! Length-prefixed frame codec shared by every transport that carries
//! [`Message`]s over a byte stream.
//!
//! The discrete-event simulator hands whole [`Message`] values around, but
//! real transports — the [`crate::threaded`] channel runner and the
//! `lhg-runtime` TCP runtime — move opaque bytes. This module fixes the
//! framing those transports share:
//!
//! ```text
//! 4 bytes  frame length L (big-endian), counting only the body
//! L bytes  body: one Message in the crate wire format (see crate::message)
//! ```
//!
//! Three entry points cover the transport shapes in the workspace:
//!
//! * [`encode_frame`] / [`decode_frame`] — whole-frame in memory, for
//!   transports that preserve message boundaries (channels);
//! * [`write_frame`] / [`read_frame`] — blocking I/O over `Read`/`Write`,
//!   for socket reader/writer threads;
//! * [`FrameDecoder`] — incremental reassembly for byte streams that
//!   arrive in arbitrary chunks.

use std::fmt;
use std::io::{self, Read, Write};

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::Message;

/// Size of the frame length prefix in bytes.
pub const LEN_PREFIX: usize = 4;

/// Hard upper bound on the frame body length; larger prefixes are treated
/// as stream corruption rather than honored with a giant allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The frame body is not a valid [`Message`] encoding.
    Malformed,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
            CodecError::Malformed => f.write_str("frame body is not a valid message"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Encodes `msg` as one complete frame (length prefix + body).
#[must_use]
pub fn encode_frame(msg: &Message) -> Bytes {
    let body_len = msg.encoded_len();
    let mut buf = BytesMut::with_capacity(LEN_PREFIX + body_len);
    buf.put_u32(body_len as u32);
    buf.put_slice(&msg.encode());
    buf.freeze()
}

/// Decodes one complete frame (length prefix + body) back into a
/// [`Message`].
///
/// # Errors
///
/// Returns [`CodecError`] if the prefix disagrees with the actual length,
/// exceeds [`MAX_FRAME_LEN`], or the body is not a valid message.
pub fn decode_frame(frame: &[u8]) -> Result<Message, CodecError> {
    if frame.len() < LEN_PREFIX {
        return Err(CodecError::Malformed);
    }
    let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(len));
    }
    if frame.len() - LEN_PREFIX != len {
        return Err(CodecError::Malformed);
    }
    Message::decode(Bytes::copy_from_slice(&frame[LEN_PREFIX..])).ok_or(CodecError::Malformed)
}

/// Writes `msg` as one frame; returns the number of bytes written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<usize> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame from `r`, blocking until a complete frame arrives.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary); EOF in the middle of a frame is an error.
///
/// # Errors
///
/// Propagates I/O errors; corrupt prefixes and bodies surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Message>> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0;
    while got < LEN_PREFIX {
        match r.read(&mut prefix[got..])? {
            0 if got == 0 => return Ok(None), // clean EOF between frames
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(len).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Message::decode(Bytes::from(body))
        .map(Some)
        .ok_or_else(|| CodecError::Malformed.into())
}

/// Incremental frame reassembler for byte streams delivered in arbitrary
/// chunks.
///
/// Feed raw bytes with [`FrameDecoder::feed`]; pull completed messages with
/// [`FrameDecoder::next_frame`] until it returns `Ok(None)`.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw stream bytes to the internal buffer.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered bytes not yet consumed by a completed frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Extracts the next complete message, if a full frame is buffered.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on an oversized prefix or a malformed body;
    /// the decoder should be discarded afterwards (stream framing is lost).
    pub fn next_frame(&mut self) -> Result<Option<Message>, CodecError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < LEN_PREFIX {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::FrameTooLarge(len));
        }
        if avail.len() < LEN_PREFIX + len {
            self.compact();
            return Ok(None);
        }
        let body = &avail[LEN_PREFIX..LEN_PREFIX + len];
        let msg = Message::decode(Bytes::copy_from_slice(body)).ok_or(CodecError::Malformed)?;
        self.consumed += LEN_PREFIX + len;
        Ok(Some(msg))
    }

    /// Drops already-consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> Message {
        Message::new(i, i as u32, Bytes::from(format!("payload-{i}")))
    }

    #[test]
    fn whole_frame_round_trips() {
        let m = sample(7);
        let frame = encode_frame(&m);
        assert_eq!(frame.len(), LEN_PREFIX + m.encoded_len());
        assert_eq!(decode_frame(&frame), Ok(m));
    }

    #[test]
    fn decode_frame_rejects_bad_shapes() {
        let m = sample(1);
        let frame = encode_frame(&m);
        assert_eq!(decode_frame(&frame[..2]), Err(CodecError::Malformed));
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(CodecError::Malformed)
        );
        let mut trailing = frame.to_vec();
        trailing.push(0);
        assert_eq!(decode_frame(&trailing), Err(CodecError::Malformed));
        let oversized = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        assert_eq!(
            decode_frame(&oversized),
            Err(CodecError::FrameTooLarge(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn io_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        let sent: Vec<Message> = (0..5).map(sample).collect();
        for m in &sent {
            let n = write_frame(&mut wire, m).unwrap();
            assert_eq!(n, LEN_PREFIX + m.encoded_len());
        }
        let mut cursor = io::Cursor::new(wire);
        let mut got = Vec::new();
        while let Some(m) = read_frame(&mut cursor).unwrap() {
            got.push(m);
        }
        assert_eq!(got, sent);
    }

    #[test]
    fn read_frame_flags_mid_frame_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample(3)).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = io::Cursor::new(wire);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn incremental_decoder_handles_byte_at_a_time() {
        let sent: Vec<Message> = (0..4).map(sample).collect();
        let mut wire = Vec::new();
        for m in &sent {
            write_frame(&mut wire, m).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            dec.feed(&[b]);
            while let Some(m) = dec.next_frame().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, sent);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn incremental_decoder_handles_split_and_merged_chunks() {
        let sent: Vec<Message> = (0..6).map(sample).collect();
        let mut wire = Vec::new();
        for m in &sent {
            write_frame(&mut wire, m).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        // Deterministic irregular chunking.
        let mut pos = 0;
        let mut step = 1;
        while pos < wire.len() {
            let end = (pos + step).min(wire.len());
            dec.feed(&wire[pos..end]);
            while let Some(m) = dec.next_frame().unwrap() {
                got.push(m);
            }
            pos = end;
            step = step % 13 + 3;
        }
        assert_eq!(got, sent);
    }

    #[test]
    fn incremental_decoder_reports_oversized_frames() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME_LEN as u32 + 7).to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(CodecError::FrameTooLarge(MAX_FRAME_LEN + 7))
        );
    }
}
