//! Per-class, per-link wire-cost accounting.
//!
//! The metrics registry answers *how much* traffic an engine moved
//! (`*.messages_sent`, `*.bytes_sent`); this module answers *what the
//! traffic was for*. Every broadcast id in the workspace carries its
//! message class in the tag bits above [`MAX_MEMBERS`](crate::reliable)
//! (bit 56 and up), so a frame can be classified from its id alone — no
//! payload parsing on the hot path:
//!
//! | bit | class | stamped by |
//! |-----|-------|------------|
//! | 56  | byzantine echo/ready gossip | `lhg_byzantine::frame` |
//! | 57  | hello handshake | `lhg-runtime` wire |
//! | 58  | heartbeat | `lhg-runtime` wire |
//! | 59  | crash wave | `lhg-runtime` wire |
//! | 60  | join wave | `lhg-runtime` wire |
//! | 61  | membership sync | `lhg-runtime` wire |
//! | 62  | cumulative ack / NACK | [`crate::reliable`] |
//! | 63  | anti-entropy summary/pull | [`crate::reliable`] |
//! | none | flood data | everyone |
//!
//! This module is the canonical home of the tag bits the `lhg-net` crate
//! itself does not stamp (56–61): `lhg_byzantine::frame::BYZ_ID_TAG` and
//! the `lhg-runtime` wire constants re-derive theirs from here, so the id
//! space cannot silently fork across crates.
//!
//! A [`WireAccountant`] lives inside every
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) and is fed at the
//! exact code sites that already increment the engines' `messages_sent` /
//! `bytes_sent` counters — which is what makes the per-class totals match
//! those counters *exactly*, frame for frame and byte for byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::codec::LEN_PREFIX;
use crate::reliable::{ACK_TAG, SUMMARY_TAG};

/// Tag bit for Byzantine gossip ids (canonical definition;
/// `lhg_byzantine::frame::BYZ_ID_TAG` re-derives from here).
pub const BYZ_TAG: u64 = 1 << 56;
/// Tag bit for runtime hello handshakes (canonical; the runtime's wire
/// module re-derives from here).
pub const HELLO_TAG: u64 = 1 << 57;
/// Tag bit for runtime heartbeats.
pub const HEARTBEAT_TAG: u64 = 1 << 58;
/// Tag bit for runtime crash waves.
pub const CRASH_TAG: u64 = 1 << 59;
/// Tag bit for runtime join waves.
pub const JOIN_TAG: u64 = 1 << 60;
/// Tag bit for runtime membership sync frames.
pub const SYNC_TAG: u64 = 1 << 61;

/// Every tag bit that names a message class. Ids stamp at most one.
const CLASS_TAG_MASK: u64 =
    BYZ_TAG | HELLO_TAG | HEARTBEAT_TAG | CRASH_TAG | JOIN_TAG | SYNC_TAG | ACK_TAG | SUMMARY_TAG;

/// What a frame on the wire is *for*, recovered from its broadcast id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// Application flood data (no tag bits set).
    Data,
    /// Reliable-layer cumulative ack / selective NACK.
    Ack,
    /// Reliable-layer anti-entropy summary or pull.
    Summary,
    /// Failure-detector heartbeat.
    Heartbeat,
    /// Connection hello handshake.
    Hello,
    /// Crash gossip wave.
    Crash,
    /// Join gossip wave.
    Join,
    /// Membership sync (degraded-mode recovery).
    Sync,
    /// Byzantine echo/ready gossip.
    Byz,
}

/// Number of message classes.
pub const CLASS_COUNT: usize = 9;

impl MessageClass {
    /// Every class, in [`MessageClass::index`] order.
    pub const ALL: [MessageClass; CLASS_COUNT] = [
        MessageClass::Data,
        MessageClass::Ack,
        MessageClass::Summary,
        MessageClass::Heartbeat,
        MessageClass::Hello,
        MessageClass::Crash,
        MessageClass::Join,
        MessageClass::Sync,
        MessageClass::Byz,
    ];

    /// Classifies a broadcast id by its tag bits.
    #[must_use]
    pub fn classify(broadcast_id: u64) -> MessageClass {
        match broadcast_id & CLASS_TAG_MASK {
            0 => MessageClass::Data,
            ACK_TAG => MessageClass::Ack,
            SUMMARY_TAG => MessageClass::Summary,
            HEARTBEAT_TAG => MessageClass::Heartbeat,
            HELLO_TAG => MessageClass::Hello,
            CRASH_TAG => MessageClass::Crash,
            JOIN_TAG => MessageClass::Join,
            SYNC_TAG => MessageClass::Sync,
            _ => MessageClass::Byz, // BYZ_TAG, alone or under a digest
        }
    }

    /// Dense index into per-class tables.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in JSON and metric series.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MessageClass::Data => "data",
            MessageClass::Ack => "ack",
            MessageClass::Summary => "summary",
            MessageClass::Heartbeat => "heartbeat",
            MessageClass::Hello => "hello",
            MessageClass::Crash => "crash",
            MessageClass::Join => "join",
            MessageClass::Sync => "sync",
            MessageClass::Byz => "byz",
        }
    }
}

/// Peeks the broadcast id out of an encoded frame (length prefix + body)
/// without decoding the message — the id is the first 8 body bytes.
/// Returns `None` on frames too short to carry one.
#[must_use]
pub fn peek_broadcast_id(frame: &[u8]) -> Option<u64> {
    let body = frame.get(LEN_PREFIX..LEN_PREFIX + 8)?;
    Some(u64::from_be_bytes(body.try_into().ok()?))
}

/// Frame and byte counters for each message class: a pair of fixed atomic
/// arrays, so recording never allocates or locks.
#[derive(Debug)]
pub struct ClassCounts {
    frames: [AtomicU64; CLASS_COUNT],
    bytes: [AtomicU64; CLASS_COUNT],
}

impl Default for ClassCounts {
    fn default() -> Self {
        ClassCounts {
            frames: [(); CLASS_COUNT].map(|()| AtomicU64::new(0)),
            bytes: [(); CLASS_COUNT].map(|()| AtomicU64::new(0)),
        }
    }
}

/// One class's totals within a [`ClassCounts`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassTotal {
    /// The message class.
    pub class: MessageClass,
    /// Frames recorded.
    pub frames: u64,
    /// Bytes recorded.
    pub bytes: u64,
}

impl ClassCounts {
    /// Records one frame of `bytes` bytes under `class`.
    pub fn record(&self, class: MessageClass, bytes: u64) {
        let i = class.index();
        self.frames[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current totals for every class, in [`MessageClass::ALL`] order.
    #[must_use]
    pub fn totals(&self) -> [ClassTotal; CLASS_COUNT] {
        let mut out = [ClassTotal {
            class: MessageClass::Data,
            frames: 0,
            bytes: 0,
        }; CLASS_COUNT];
        for (i, class) in MessageClass::ALL.into_iter().enumerate() {
            out[i] = ClassTotal {
                class,
                frames: self.frames[i].load(Ordering::Relaxed),
                bytes: self.bytes[i].load(Ordering::Relaxed),
            };
        }
        out
    }

    /// Sum of frames across all classes.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.frames.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }

    /// Sum of bytes across all classes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Per-broadcast cost row: frames and bytes a single data broadcast put
/// on the wire (cluster-wide, all links).
#[derive(Debug, Default)]
struct BroadcastCost {
    frames: AtomicU64,
    bytes: AtomicU64,
}

/// Cap on distinct broadcast ids tracked per accountant; beyond it new
/// ids are counted in class totals but not per-broadcast (bounded
/// memory under chaos churn).
pub const MAX_TRACKED_BROADCASTS: usize = 4096;

/// Cluster-wide wire-cost table: frames and bytes per message class, per
/// directed link, and per data broadcast.
///
/// One accountant rides inside every
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry); engines call
/// [`WireAccountant::record`] at the same site that increments their
/// `messages_sent` / `bytes_sent` counters, so the two views reconcile
/// exactly.
#[derive(Debug, Default)]
pub struct WireAccountant {
    totals: ClassCounts,
    links: RwLock<BTreeMap<(u32, u32), Arc<ClassCounts>>>,
    broadcasts: RwLock<BTreeMap<u64, Arc<BroadcastCost>>>,
}

impl WireAccountant {
    /// Creates an empty accountant.
    #[must_use]
    pub fn new() -> Self {
        WireAccountant::default()
    }

    /// Records one encoded frame of `bytes` bytes sent `from → to`,
    /// classified by its broadcast id. `bytes` should be whatever the
    /// engine's own byte counter adds for the same frame, so the views
    /// stay reconciled.
    pub fn record(&self, from: u32, to: u32, broadcast_id: u64, bytes: u64) {
        let class = MessageClass::classify(broadcast_id);
        self.totals.record(class, bytes);
        let link = {
            let links = self.links.read();
            links.get(&(from, to)).map(Arc::clone)
        };
        let link = link.unwrap_or_else(|| {
            Arc::clone(
                self.links
                    .write()
                    .entry((from, to))
                    .or_insert_with(|| Arc::new(ClassCounts::default())),
            )
        });
        link.record(class, bytes);
        if class == MessageClass::Data {
            let row = {
                let map = self.broadcasts.read();
                map.get(&broadcast_id).map(Arc::clone)
            };
            let row = match row {
                Some(r) => Some(r),
                None => {
                    let mut map = self.broadcasts.write();
                    if map.len() >= MAX_TRACKED_BROADCASTS && !map.contains_key(&broadcast_id) {
                        None
                    } else {
                        Some(Arc::clone(
                            map.entry(broadcast_id)
                                .or_insert_with(|| Arc::new(BroadcastCost::default())),
                        ))
                    }
                }
            };
            if let Some(row) = row {
                row.frames.fetch_add(1, Ordering::Relaxed);
                row.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Cluster-wide per-class totals.
    #[must_use]
    pub fn class_totals(&self) -> [ClassTotal; CLASS_COUNT] {
        self.totals.totals()
    }

    /// Total frames recorded across every class.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.totals.total_frames()
    }

    /// Total bytes recorded across every class.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.totals.total_bytes()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_frames() == 0
    }

    /// Per-link breakdown: every directed link that carried traffic, with
    /// its per-class totals, in `(from, to)` order.
    #[must_use]
    pub fn link_totals(&self) -> Vec<((u32, u32), [ClassTotal; CLASS_COUNT])> {
        self.links
            .read()
            .iter()
            .map(|(&link, counts)| (link, counts.totals()))
            .collect()
    }

    /// Per-broadcast cost rows `(broadcast_id, frames, bytes)` for data
    /// broadcasts, in id order. Control traffic never appears here.
    #[must_use]
    pub fn broadcast_costs(&self) -> Vec<(u64, u64, u64)> {
        self.broadcasts
            .read()
            .iter()
            .map(|(&id, c)| {
                (
                    id,
                    c.frames.load(Ordering::Relaxed),
                    c.bytes.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Renders the accountant as a JSON-ready tree:
    /// `{"total_frames": .., "total_bytes": .., "classes": {name:
    /// {"frames": .., "bytes": ..}}, "links": N}` — per-link rows are
    /// summarized to a count (the full matrix is O(links × classes);
    /// callers wanting it use [`WireAccountant::link_totals`]).
    #[must_use]
    pub fn to_value(&self) -> serde::Value {
        let classes: Vec<(String, serde::Value)> = self
            .class_totals()
            .iter()
            .filter(|t| t.frames > 0)
            .map(|t| {
                (
                    t.class.name().to_owned(),
                    serde::Value::Obj(vec![
                        ("frames".to_owned(), serde::Value::U64(t.frames)),
                        ("bytes".to_owned(), serde::Value::U64(t.bytes)),
                    ]),
                )
            })
            .collect();
        serde::Value::Obj(vec![
            (
                "total_frames".to_owned(),
                serde::Value::U64(self.total_frames()),
            ),
            (
                "total_bytes".to_owned(),
                serde::Value::U64(self.total_bytes()),
            ),
            ("classes".to_owned(), serde::Value::Obj(classes)),
            (
                "links".to_owned(),
                serde::Value::U64(self.links.read().len() as u64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_frame;
    use crate::message::Message;
    use bytes::Bytes;

    #[test]
    fn classify_covers_every_tag_bit() {
        assert_eq!(MessageClass::classify(42), MessageClass::Data);
        assert_eq!(MessageClass::classify(ACK_TAG | 7), MessageClass::Ack);
        assert_eq!(
            MessageClass::classify(SUMMARY_TAG | 7),
            MessageClass::Summary
        );
        assert_eq!(
            MessageClass::classify(HEARTBEAT_TAG | 7),
            MessageClass::Heartbeat
        );
        assert_eq!(MessageClass::classify(HELLO_TAG | 7), MessageClass::Hello);
        assert_eq!(
            MessageClass::classify(CRASH_TAG | (9 << 24) | 7),
            MessageClass::Crash
        );
        assert_eq!(
            MessageClass::classify(JOIN_TAG | (9 << 24) | 7),
            MessageClass::Join
        );
        assert_eq!(MessageClass::classify(SYNC_TAG | 7), MessageClass::Sync);
        // Byz ids are BYZ_TAG | 56-bit digest: any digest bits below 56.
        assert_eq!(
            MessageClass::classify(BYZ_TAG | 0x00ff_ffff_ffff_ffff),
            MessageClass::Byz
        );
    }

    #[test]
    fn class_indices_are_dense_and_named() {
        for (i, class) in MessageClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(!class.name().is_empty());
        }
    }

    #[test]
    fn peek_matches_encoded_id() {
        let msg = Message::new(0xdead_beef_cafe, 3, Bytes::from_static(b"x"));
        let frame = encode_frame(&msg);
        assert_eq!(peek_broadcast_id(&frame), Some(0xdead_beef_cafe));
        assert_eq!(peek_broadcast_id(&frame[..6]), None);
    }

    #[test]
    fn totals_reconcile_with_links_and_broadcasts() {
        let acc = WireAccountant::new();
        acc.record(0, 1, 5, 100); // data broadcast 5
        acc.record(0, 1, 5, 100);
        acc.record(1, 2, 5, 120); // same broadcast, other link
        acc.record(0, 1, ACK_TAG | 1, 30);
        acc.record(2, 0, HEARTBEAT_TAG | 2, 25);

        assert_eq!(acc.total_frames(), 5);
        assert_eq!(acc.total_bytes(), 375);
        let by_class: BTreeMap<&str, (u64, u64)> = acc
            .class_totals()
            .iter()
            .map(|t| (t.class.name(), (t.frames, t.bytes)))
            .collect();
        assert_eq!(by_class["data"], (3, 320));
        assert_eq!(by_class["ack"], (1, 30));
        assert_eq!(by_class["heartbeat"], (1, 25));

        // Per-link rows sum back to the cluster totals.
        let links = acc.link_totals();
        assert_eq!(links.len(), 3);
        let link_frames: u64 = links
            .iter()
            .flat_map(|(_, t)| t.iter().map(|c| c.frames))
            .sum();
        let link_bytes: u64 = links
            .iter()
            .flat_map(|(_, t)| t.iter().map(|c| c.bytes))
            .sum();
        assert_eq!(link_frames, acc.total_frames());
        assert_eq!(link_bytes, acc.total_bytes());

        // Broadcast rows carry only data frames.
        assert_eq!(acc.broadcast_costs(), vec![(5, 3, 320)]);
    }

    #[test]
    fn broadcast_tracking_is_capped_but_totals_are_not() {
        let acc = WireAccountant::new();
        for id in 0..(MAX_TRACKED_BROADCASTS as u64 + 10) {
            acc.record(0, 1, id + 1, 10);
        }
        assert_eq!(acc.broadcast_costs().len(), MAX_TRACKED_BROADCASTS);
        assert_eq!(acc.total_frames(), MAX_TRACKED_BROADCASTS as u64 + 10);
    }

    #[test]
    fn to_value_renders_only_active_classes() {
        let acc = WireAccountant::new();
        acc.record(0, 1, 9, 50);
        let json = serde_json::to_string(&acc.to_value()).unwrap();
        assert!(json.contains("\"data\""), "{json}");
        assert!(!json.contains("\"heartbeat\""), "{json}");
        assert!(json.contains("\"total_bytes\":50") || json.contains("\"total_bytes\": 50"));
    }
}
