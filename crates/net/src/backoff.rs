//! Jittered exponential backoff for connection retry.
//!
//! Replaces the runtime's original fixed dial backoff: each failed attempt
//! doubles the delay (clamped to a cap), then jitters it uniformly into
//! `[delay/2, delay]` so a cohort of dialers that failed together does not
//! retry in lockstep. After `max_attempts` consecutive failures
//! [`Backoff::next_delay`] returns `None`, letting the caller switch to a
//! low-frequency probation probe instead of hammering a dead peer.
//!
//! A successful connection does **not** clear the failure streak by itself:
//! a flapping peer that accepts the handshake and dies a moment later would
//! otherwise reset the schedule to the base rung on every flap, turning the
//! exponential backoff into a fixed-rate hammer. Instead the caller reports
//! [`Backoff::connected`] / [`Backoff::disconnected`] transitions, and
//! [`Backoff::maybe_reset`] clears the streak only after the link has been
//! continuously healthy for a full [`BackoffPolicy::probation_window`].

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;

/// Tunable backoff parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
    /// Consecutive failures after which `next_delay` returns `None`.
    pub max_attempts: u32,
    /// How long a connection must stay continuously healthy before
    /// [`Backoff::maybe_reset`] clears the failure streak. A single
    /// successful dial inside this window keeps the escalated schedule.
    pub probation_window: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 10,
            probation_window: Duration::from_secs(2),
        }
    }
}

/// Per-peer retry state driven by a [`BackoffPolicy`].
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempts: u32,
    /// When the current unbroken healthy stretch began, if connected.
    healthy_since: Option<Instant>,
}

impl Backoff {
    /// Fresh state: the next failure is attempt 1.
    pub fn new(policy: BackoffPolicy) -> Self {
        Backoff {
            policy,
            attempts: 0,
            healthy_since: None,
        }
    }

    /// Records a failure and returns how long to wait before retrying, or
    /// `None` once `max_attempts` consecutive failures have accumulated.
    ///
    /// The pre-jitter delay for attempt `i` (1-based) is
    /// `min(base * 2^(i-1), cap)`; the returned delay is uniform in
    /// `[delay/2, delay]`.
    pub fn next_delay(&mut self, rng: &mut StdRng) -> Option<Duration> {
        self.healthy_since = None; // a failure breaks any healthy stretch
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        self.attempts += 1;
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << (self.attempts - 1).min(20))
            .min(self.policy.cap);
        let upper = exp.as_micros() as u64;
        let lower = upper / 2;
        let jittered = if upper > lower {
            rng.random_range(lower..=upper)
        } else {
            upper
        };
        Some(Duration::from_micros(jittered))
    }

    /// Clears the failure streak unconditionally. Callers that want the
    /// flap-resistant behaviour should report [`Backoff::connected`] and
    /// poll [`Backoff::maybe_reset`] instead.
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.healthy_since = None;
    }

    /// Marks the link healthy as of `now`. An already-running healthy
    /// stretch is preserved (reconnection bookkeeping may report the same
    /// connection more than once).
    pub fn connected(&mut self, now: Instant) {
        self.healthy_since.get_or_insert(now);
    }

    /// Marks the link down: any healthy stretch in progress is voided, so
    /// the escalated schedule survives a connect-then-die flap even if the
    /// teardown is noticed before the next dial failure.
    pub fn disconnected(&mut self) {
        self.healthy_since = None;
    }

    /// Clears the failure streak — and returns `true` — only once the link
    /// has been continuously healthy for the policy's probation window.
    /// Until then the escalated delay schedule stays in force.
    pub fn maybe_reset(&mut self, now: Instant) -> bool {
        let earned = self
            .healthy_since
            .is_some_and(|t| now.duration_since(t) >= self.policy.probation_window);
        if earned {
            self.reset();
        }
        earned
    }

    /// Consecutive failures recorded since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The policy this state was built with.
    pub fn policy(&self) -> BackoffPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(160),
            max_attempts: 6,
            probation_window: Duration::from_millis(500),
        }
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = Backoff::new(policy());
        // Pre-jitter schedule: 10, 20, 40, 80, 160, 160 (capped).
        let expected_ms = [10u64, 20, 40, 80, 160, 160];
        for (i, &exp_ms) in expected_ms.iter().enumerate() {
            let d = b
                .next_delay(&mut rng)
                .unwrap_or_else(|| panic!("attempt {} should still retry", i + 1));
            let exp = Duration::from_millis(exp_ms);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {}: delay {d:?} outside [{:?}, {exp:?}]",
                i + 1,
                exp / 2,
            );
        }
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Backoff::new(policy());
        for _ in 0..6 {
            assert!(b.next_delay(&mut rng).is_some());
        }
        assert_eq!(b.attempts(), 6);
        assert!(b.next_delay(&mut rng).is_none());
        assert!(b.next_delay(&mut rng).is_none(), "stays exhausted");
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Backoff::new(policy());
        for _ in 0..6 {
            b.next_delay(&mut rng);
        }
        assert!(b.next_delay(&mut rng).is_none());
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay(&mut rng).expect("retries again after reset");
        assert!(d <= Duration::from_millis(10), "back to the base rung");
    }

    #[test]
    fn jitter_is_deterministic_under_a_fixed_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(1234);
            let mut b = Backoff::new(policy());
            let mut out = Vec::new();
            while let Some(d) = b.next_delay(&mut rng) {
                out.push(d);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_dial_success_does_not_reset_the_schedule() {
        // Regression: a flapping peer used to get the base delay back after
        // every momentary connect, defeating the exponential schedule.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = Backoff::new(policy());
        for _ in 0..4 {
            b.next_delay(&mut rng);
        }
        assert_eq!(b.attempts(), 4);
        let t0 = Instant::now();
        b.connected(t0);
        assert!(
            !b.maybe_reset(t0 + Duration::from_millis(100)),
            "inside the probation window the streak must survive"
        );
        assert_eq!(b.attempts(), 4);
        // The flap: next failure continues on the escalated rung (attempt 5
        // → pre-jitter 160ms, far above the 10ms base).
        let d = b.next_delay(&mut rng).unwrap();
        assert!(
            d >= Duration::from_millis(80),
            "delay {d:?} fell back toward the base rung after one flap"
        );
    }

    #[test]
    fn full_probation_window_earns_the_reset() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = Backoff::new(policy());
        for _ in 0..5 {
            b.next_delay(&mut rng);
        }
        let t0 = Instant::now();
        b.connected(t0);
        // connected() again mid-window must not restart the stretch.
        b.connected(t0 + Duration::from_millis(400));
        assert!(b.maybe_reset(t0 + Duration::from_millis(500)));
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay(&mut rng).unwrap();
        assert!(d <= Duration::from_millis(10), "back to the base rung");
    }

    #[test]
    fn disconnect_voids_the_healthy_stretch() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = Backoff::new(policy());
        b.next_delay(&mut rng);
        let t0 = Instant::now();
        b.connected(t0);
        b.disconnected();
        assert!(
            !b.maybe_reset(t0 + Duration::from_secs(10)),
            "a voided stretch never earns the reset, however much time passes"
        );
        // Reconnecting starts a fresh stretch from its own instant.
        b.connected(t0 + Duration::from_secs(10));
        assert!(!b.maybe_reset(t0 + Duration::from_secs(10) + Duration::from_millis(499)));
        assert!(b.maybe_reset(t0 + Duration::from_secs(10) + Duration::from_millis(500)));
    }

    #[test]
    fn jitter_actually_varies_across_seeds() {
        let sample = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Backoff::new(policy()).next_delay(&mut rng).unwrap()
        };
        let distinct: std::collections::BTreeSet<Duration> = (0..16).map(sample).collect();
        assert!(distinct.len() > 1, "jitter should depend on the RNG");
    }
}
