//! Jittered exponential backoff for connection retry.
//!
//! Replaces the runtime's original fixed dial backoff: each failed attempt
//! doubles the delay (clamped to a cap), then jitters it uniformly into
//! `[delay/2, delay]` so a cohort of dialers that failed together does not
//! retry in lockstep. After `max_attempts` consecutive failures
//! [`Backoff::next_delay`] returns `None`, letting the caller switch to a
//! low-frequency probation probe instead of hammering a dead peer.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;

/// Tunable backoff parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
    /// Consecutive failures after which `next_delay` returns `None`.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 10,
        }
    }
}

/// Per-peer retry state driven by a [`BackoffPolicy`].
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempts: u32,
}

impl Backoff {
    /// Fresh state: the next failure is attempt 1.
    pub fn new(policy: BackoffPolicy) -> Self {
        Backoff {
            policy,
            attempts: 0,
        }
    }

    /// Records a failure and returns how long to wait before retrying, or
    /// `None` once `max_attempts` consecutive failures have accumulated.
    ///
    /// The pre-jitter delay for attempt `i` (1-based) is
    /// `min(base * 2^(i-1), cap)`; the returned delay is uniform in
    /// `[delay/2, delay]`.
    pub fn next_delay(&mut self, rng: &mut StdRng) -> Option<Duration> {
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        self.attempts += 1;
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << (self.attempts - 1).min(20))
            .min(self.policy.cap);
        let upper = exp.as_micros() as u64;
        let lower = upper / 2;
        let jittered = if upper > lower {
            rng.random_range(lower..=upper)
        } else {
            upper
        };
        Some(Duration::from_micros(jittered))
    }

    /// Clears the failure streak after a successful connection.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Consecutive failures recorded since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The policy this state was built with.
    pub fn policy(&self) -> BackoffPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(160),
            max_attempts: 6,
        }
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = Backoff::new(policy());
        // Pre-jitter schedule: 10, 20, 40, 80, 160, 160 (capped).
        let expected_ms = [10u64, 20, 40, 80, 160, 160];
        for (i, &exp_ms) in expected_ms.iter().enumerate() {
            let d = b
                .next_delay(&mut rng)
                .unwrap_or_else(|| panic!("attempt {} should still retry", i + 1));
            let exp = Duration::from_millis(exp_ms);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {}: delay {d:?} outside [{:?}, {exp:?}]",
                i + 1,
                exp / 2,
            );
        }
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Backoff::new(policy());
        for _ in 0..6 {
            assert!(b.next_delay(&mut rng).is_some());
        }
        assert_eq!(b.attempts(), 6);
        assert!(b.next_delay(&mut rng).is_none());
        assert!(b.next_delay(&mut rng).is_none(), "stays exhausted");
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Backoff::new(policy());
        for _ in 0..6 {
            b.next_delay(&mut rng);
        }
        assert!(b.next_delay(&mut rng).is_none());
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay(&mut rng).expect("retries again after reset");
        assert!(d <= Duration::from_millis(10), "back to the base rung");
    }

    #[test]
    fn jitter_is_deterministic_under_a_fixed_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(1234);
            let mut b = Backoff::new(policy());
            let mut out = Vec::new();
            while let Some(d) = b.next_delay(&mut rng) {
                out.push(d);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jitter_actually_varies_across_seeds() {
        let sample = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Backoff::new(policy()).next_delay(&mut rng).unwrap()
        };
        let distinct: std::collections::BTreeSet<Duration> = (0..16).map(sample).collect();
        assert!(distinct.len() > 1, "jitter should depend on the RNG");
    }
}
