//! Deterministic discrete-event network simulator.
//!
//! Processes sit on the nodes of an overlay topology; links carry messages
//! with a configurable base latency plus seeded jitter. Events are processed
//! in (time, sequence) order, so runs are bit-for-bit reproducible for a
//! given seed. Crash times model fail-stop processes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lhg_graph::{CsrGraph, Graph, NodeId};
use lhg_trace::{PathRecord, TraceCollector};

use crate::fault::FaultInjector;
use crate::message::Message;
use crate::metrics::MetricsRegistry;

/// Simulated time in microseconds.
pub type Time = u64;

/// Link timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Fixed per-hop latency (µs).
    pub base_latency_us: u64,
    /// Additional uniform jitter in `0..jitter_us` (µs); 0 disables jitter.
    pub jitter_us: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            base_latency_us: 1_000,
            jitter_us: 200,
        }
    }
}

/// What a process may do while handling an event.
pub struct Context<'a> {
    now: Time,
    self_id: NodeId,
    neighbors: &'a [NodeId],
    outbox: Vec<(NodeId, Message)>,
    delivered: Vec<Message>,
    timers: Vec<(Time, u64)>,
}

impl Context<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// This process's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Overlay neighbors of this process.
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Sends `msg` to `to` over the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor — the overlay is the only network.
    pub fn send(&mut self, to: NodeId, msg: Message) {
        assert!(
            self.neighbors.contains(&to),
            "{to} is not a neighbor of {}",
            self.self_id
        );
        self.outbox.push((to, msg));
    }

    /// Delivers `msg` to the local application (records the delivery).
    pub fn deliver(&mut self, msg: Message) {
        self.delivered.push(msg);
    }

    /// Schedules [`Process::on_timer`] to fire on this process after
    /// `delay` (relative to now). `token` is handed back on expiry so one
    /// process can keep several timers apart.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.timers.push((self.now + delay, token));
    }
}

/// A process hosted on one overlay node.
pub trait Process {
    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut Context<'_>);
    /// Called on each message arrival.
    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>);
    /// Called when a timer scheduled via [`Context::set_timer`] expires.
    /// Default: ignored.
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let _ = (token, ctx);
    }
}

/// Per-node delivery record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving node.
    pub node: NodeId,
    /// Simulated time of the application-level delivery.
    pub time: Time,
    /// Hop count of the delivered copy.
    pub hops: u32,
    /// Broadcast id delivered.
    pub broadcast_id: u64,
    /// The neighbor the delivered copy arrived from; `None` when the node
    /// delivered its own broadcast (origin) or delivered from a timer.
    pub parent: Option<NodeId>,
    /// Trace id carried by the delivered copy, if the origin enabled
    /// tracing.
    pub trace: Option<u64>,
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// All application-level deliveries in time order.
    pub deliveries: Vec<Delivery>,
    /// Total messages put on links.
    pub messages_sent: u64,
    /// Messages removed by fault injection (drops and partition cuts).
    pub messages_dropped: u64,
    /// Time of the last processed event.
    pub end_time: Time,
}

impl SimReport {
    /// First delivery time per node (index = node id), `None` if never.
    #[must_use]
    pub fn first_delivery_times(&self, n: usize) -> Vec<Option<Time>> {
        let mut out = vec![None; n];
        for d in &self.deliveries {
            let slot = &mut out[d.node.index()];
            if slot.is_none() {
                *slot = Some(d.time);
            }
        }
        out
    }
}

/// Callback fired at each telemetry cadence boundary (virtual time).
pub type SamplerHook = Box<dyn FnMut(Time)>;

/// The discrete-event simulator.
pub struct Simulation {
    topology: CsrGraph,
    link: LinkModel,
    down: Vec<Vec<(Time, Time)>>,
    rng: StdRng,
    metrics: Option<Arc<MetricsRegistry>>,
    tracer: Option<Arc<TraceCollector>>,
    faults: Option<Arc<FaultInjector>>,
    sampler: Option<(Time, SamplerHook)>,
}

impl Simulation {
    /// Creates a simulation over `graph` with the given link model and seed.
    #[must_use]
    pub fn new(graph: &Graph, link: LinkModel, seed: u64) -> Self {
        Simulation {
            topology: CsrGraph::from_graph(graph),
            link,
            down: vec![Vec::new(); graph.node_count()],
            rng: StdRng::seed_from_u64(seed),
            metrics: None,
            tracer: None,
            faults: None,
            sampler: None,
        }
    }

    /// Attaches a metrics registry; the run records counters
    /// `sim.messages_sent` / `sim.bytes_sent` / `sim.deliveries` and
    /// histogram `sim.delivery_latency_us` (simulated µs from time 0).
    pub fn with_metrics(&mut self, metrics: Arc<MetricsRegistry>) -> &mut Self {
        self.metrics = Some(metrics);
        self
    }

    /// Arms a virtual-time sampling cadence: during [`Simulation::run`],
    /// `on_sample` fires at every multiple of `every_us` of simulated time
    /// the run crosses (before the first event at or past the boundary is
    /// handled), and once more at the run's end time. Telemetry samplers
    /// hook here to snapshot the attached metrics registry on the same
    /// fixed cadence wall-clock engines use, but in virtual µs — the
    /// simulator stays free of any real-clock dependency.
    pub fn with_sampler(&mut self, every_us: Time, on_sample: SamplerHook) -> &mut Self {
        assert!(every_us > 0, "sampling cadence must be positive");
        self.sampler = Some((every_us, on_sample));
        self
    }

    /// Attaches a trace collector: every delivery of a message whose
    /// [`Message::trace`] is set contributes a [`PathRecord`] (parent =
    /// the neighbor the copy arrived from, timestamped with virtual time),
    /// from which the collector reconstructs the realized spanning tree.
    pub fn with_trace(&mut self, tracer: Arc<TraceCollector>) -> &mut Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a fault injector: every outbound message consults
    /// [`FaultInjector::decide`] (with virtual time as the clock), so
    /// drops, duplicates, extra delays, reorders, and partitions apply.
    /// The injector's node down windows are also merged into the
    /// simulation's own (see [`Simulation::down_between`]).
    pub fn with_faults(&mut self, faults: Arc<FaultInjector>) -> &mut Self {
        for v in 0..self.topology.node_count() {
            for &(from, until) in faults.down_windows(v as u32) {
                self.down[v].push((from, until));
            }
        }
        self.faults = Some(faults);
        self
    }

    /// Fail-stops `node` at `time` (events at or after `time` are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn crash_at(&mut self, node: NodeId, time: Time) -> &mut Self {
        self.down_between(node, time, Time::MAX)
    }

    /// Takes `node` offline for `[from, until)`: events addressed to it in
    /// that window are dropped, and it neither sends nor handles timers.
    /// Process state survives the outage — this models a network-detached
    /// (fail-recover) node, not an amnesiac restart.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn down_between(&mut self, node: NodeId, from: Time, until: Time) -> &mut Self {
        assert!(
            node.index() < self.topology.node_count(),
            "{node} out of bounds"
        );
        self.down[node.index()].push((from, until));
        self
    }

    fn is_down(&self, node: NodeId, time: Time) -> bool {
        self.down[node.index()]
            .iter()
            .any(|&(f, u)| time >= f && time < u)
    }

    /// Runs the simulation with one boxed process per node until the event
    /// queue drains or `max_time` passes.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the node count.
    pub fn run(&mut self, mut processes: Vec<Box<dyn Process>>, max_time: Time) -> SimReport {
        let n = self.topology.node_count();
        assert_eq!(processes.len(), n, "one process per node required");

        // Event payloads live in `events`; the heap orders (time, seq, node,
        // payload-slot). A payload is either an in-flight message or an
        // armed timer token.
        enum EventKind {
            Message { from: NodeId, msg: Message },
            Timer { token: u64 },
        }
        let mut queue: BinaryHeap<Reverse<(Time, u64, usize, usize)>> = BinaryHeap::new();
        let mut events: Vec<EventKind> = Vec::new();
        let mut seq: u64 = 0;
        let mut fault_seq: u64 = 0;
        let mut messages_sent: u64 = 0;
        let mut messages_dropped: u64 = 0;
        let mut deliveries = Vec::new();
        let mut end_time = 0;

        let m_msgs = self
            .metrics
            .as_ref()
            .map(|m| m.counter("sim.messages_sent"));
        let m_bytes = self.metrics.as_ref().map(|m| m.counter("sim.bytes_sent"));
        let m_delivs = self.metrics.as_ref().map(|m| m.counter("sim.deliveries"));
        let m_dropped = self
            .metrics
            .as_ref()
            .map(|m| m.counter("sim.messages_dropped"));
        let m_latency = self
            .metrics
            .as_ref()
            .map(|m| m.histogram("sim.delivery_latency_us"));
        let m_wire = self.metrics.as_ref().map(|m| m.wire());

        let tracer = self.tracer.clone();
        let faults = self.faults.clone();
        // Drains a handled context into the report and the event queue.
        // `parent` is the neighbor whose message was being handled, if any.
        let mut flush = |ctx: Context<'_>,
                         at: NodeId,
                         parent: Option<NodeId>,
                         time: Time,
                         rng_latency: &mut dyn FnMut() -> Time,
                         queue: &mut BinaryHeap<Reverse<(Time, u64, usize, usize)>>,
                         events: &mut Vec<EventKind>,
                         seq: &mut u64| {
            for d in ctx.delivered {
                if let Some(c) = &m_delivs {
                    c.inc();
                }
                if let Some(h) = &m_latency {
                    h.record(time);
                }
                if let (Some(t), Some(trace_id)) = (&tracer, d.trace) {
                    t.record(PathRecord {
                        trace_id,
                        node: at.index() as u32,
                        parent: parent.map(|p| p.index() as u32),
                        hops: d.hops,
                        at_us: time,
                    });
                }
                deliveries.push(Delivery {
                    node: at,
                    time,
                    hops: d.hops,
                    broadcast_id: d.broadcast_id,
                    parent,
                    trace: d.trace,
                });
            }
            for (to, msg) in ctx.outbox {
                // Fault decisions key on a per-message counter that advances
                // even for dropped frames, so a plan's verdicts line up
                // run-to-run regardless of what earlier faults removed.
                let copies = match &faults {
                    Some(f) => {
                        let c = f.decide(at.index() as u32, to.index() as u32, time, fault_seq);
                        fault_seq += 1;
                        c
                    }
                    None => vec![0],
                };
                if copies.is_empty() {
                    messages_dropped += 1;
                    if let Some(c) = &m_dropped {
                        c.inc();
                    }
                    continue;
                }
                for extra in copies {
                    messages_sent += 1;
                    if let Some(c) = &m_msgs {
                        c.inc();
                    }
                    if let Some(c) = &m_bytes {
                        c.add(msg.encoded_len() as u64);
                    }
                    if let Some(w) = &m_wire {
                        w.record(
                            at.index() as u32,
                            to.index() as u32,
                            msg.broadcast_id,
                            msg.encoded_len() as u64,
                        );
                    }
                    let latency = rng_latency() + extra;
                    let slot = events.len();
                    events.push(EventKind::Message {
                        from: at,
                        msg: msg.clone(),
                    });
                    queue.push(Reverse((time + latency, *seq, to.index(), slot)));
                    *seq += 1;
                }
            }
            for (fire_at, token) in ctx.timers {
                let slot = events.len();
                events.push(EventKind::Timer { token });
                queue.push(Reverse((fire_at, *seq, at.index(), slot)));
                *seq += 1;
            }
        };

        // Start every live process at time 0.
        for (v, process) in processes.iter_mut().enumerate() {
            if self.is_down(NodeId(v), 0) {
                continue;
            }
            let mut ctx = Context {
                now: 0,
                self_id: NodeId(v),
                neighbors: self.topology.neighbors(NodeId(v)),
                outbox: Vec::new(),
                delivered: Vec::new(),
                timers: Vec::new(),
            };
            process.on_start(&mut ctx);
            let link = self.link;
            let rng = &mut self.rng;
            flush(
                ctx,
                NodeId(v),
                None,
                0,
                &mut || sample_latency_with(link, rng),
                &mut queue,
                &mut events,
                &mut seq,
            );
        }

        let mut sampler = self.sampler.take();
        let mut next_sample = sampler.as_ref().map(|&(every, _)| every);

        while let Some(Reverse((time, _, node, slot))) = queue.pop() {
            if time > max_time {
                break;
            }
            end_time = end_time.max(time);
            if let (Some((every, on_sample)), Some(ns)) = (&mut sampler, &mut next_sample) {
                while *ns <= time {
                    on_sample(*ns);
                    *ns += *every;
                }
            }
            let node_id = NodeId(node);
            if self.is_down(node_id, time) {
                continue;
            }
            let mut ctx = Context {
                now: time,
                self_id: node_id,
                neighbors: self.topology.neighbors(node_id),
                outbox: Vec::new(),
                delivered: Vec::new(),
                timers: Vec::new(),
            };
            let parent = match &events[slot] {
                EventKind::Message { from, msg } => {
                    let (from, msg) = (*from, msg.clone());
                    processes[node].on_message(from, msg, &mut ctx);
                    Some(from)
                }
                EventKind::Timer { token } => {
                    let token = *token;
                    processes[node].on_timer(token, &mut ctx);
                    None
                }
            };
            let link = self.link;
            let rng = &mut self.rng;
            flush(
                ctx,
                node_id,
                parent,
                time,
                &mut || sample_latency_with(link, rng),
                &mut queue,
                &mut events,
                &mut seq,
            );
        }

        // Flush the tail interval so a merged timeline covers the whole
        // run even when it ends between cadence boundaries.
        if let Some((_, on_sample)) = &mut sampler {
            on_sample(end_time);
        }

        SimReport {
            deliveries,
            messages_sent,
            messages_dropped,
            end_time,
        }
    }
}

/// Samples one link latency from `link` using `rng`.
fn sample_latency_with(link: LinkModel, rng: &mut StdRng) -> Time {
    let jitter = if link.jitter_us == 0 {
        0
    } else {
        rng.random_range(0..link.jitter_us)
    };
    link.base_latency_us + jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Echoes nothing; origin sends one message to each neighbor at start.
    struct Pinger {
        is_origin: bool,
    }

    impl Process for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.is_origin {
                for &w in &ctx.neighbors().to_vec() {
                    ctx.send(w, Message::new(1, ctx.id().index() as u32, Bytes::new()));
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Message, ctx: &mut Context<'_>) {
            ctx.deliver(msg);
        }
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    fn no_jitter() -> LinkModel {
        LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
        }
    }

    #[test]
    fn ping_reaches_neighbors_at_base_latency() {
        let g = path(3);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: false }),
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.messages_sent, 2);
        assert_eq!(report.deliveries.len(), 2);
        assert!(report.deliveries.iter().all(|d| d.time == 100));
        let firsts = report.first_delivery_times(3);
        assert_eq!(firsts, vec![Some(100), None, Some(100)]);
    }

    #[test]
    fn crashed_receiver_drops_message() {
        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.crash_at(NodeId(1), 50);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.messages_sent, 1);
        assert!(
            report.deliveries.is_empty(),
            "receiver crashed before arrival"
        );
    }

    #[test]
    fn crash_after_arrival_does_not_drop() {
        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.crash_at(NodeId(1), 101);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.deliveries.len(), 1);
    }

    #[test]
    fn earliest_crash_time_wins() {
        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.crash_at(NodeId(1), 500)
            .crash_at(NodeId(1), 50)
            .crash_at(NodeId(1), 700);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert!(report.deliveries.is_empty());
    }

    #[test]
    fn max_time_cuts_the_run() {
        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 10);
        assert!(
            report.deliveries.is_empty(),
            "latency 100 exceeds max_time 10"
        );
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let g = path(3);
        let model = LinkModel {
            base_latency_us: 100,
            jitter_us: 50,
        };
        let run = |seed| {
            let mut sim = Simulation::new(&g, model, seed);
            let procs: Vec<Box<dyn Process>> = vec![
                Box::new(Pinger { is_origin: false }),
                Box::new(Pinger { is_origin: true }),
                Box::new(Pinger { is_origin: false }),
            ];
            sim.run(procs, 1_000_000)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn metrics_record_traffic_and_latency() {
        let g = path(3);
        let reg = Arc::new(MetricsRegistry::new());
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.with_metrics(Arc::clone(&reg));
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: false }),
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(reg.counter("sim.messages_sent").get(), report.messages_sent);
        assert_eq!(
            reg.counter("sim.deliveries").get(),
            report.deliveries.len() as u64
        );
        let lat = reg.histogram("sim.delivery_latency_us").summary();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.min, 100);
        assert!(reg.counter("sim.bytes_sent").get() >= 2 * 20);
    }

    #[test]
    fn traced_flood_reconstructs_spanning_tree() {
        use std::collections::BTreeSet;

        const TRACE_ID: u64 = 0xFEED;

        /// Floods one traced broadcast: deliver + forward on first receipt.
        struct Flooder {
            is_origin: bool,
            seen: bool,
        }
        impl Process for Flooder {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                if self.is_origin {
                    self.seen = true;
                    let msg =
                        Message::new(1, ctx.id().index() as u32, Bytes::new()).with_trace(TRACE_ID);
                    ctx.deliver(msg.clone());
                    for &w in &ctx.neighbors().to_vec() {
                        ctx.send(w, msg.forwarded());
                    }
                }
            }
            fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
                if self.seen {
                    return;
                }
                self.seen = true;
                ctx.deliver(msg.clone());
                for &w in &ctx.neighbors().to_vec() {
                    if w != from {
                        ctx.send(w, msg.forwarded());
                    }
                }
            }
        }

        let g = path(4); // 0-1-2-3, origin 0 → chain tree
        let tracer = Arc::new(TraceCollector::new());
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.with_trace(Arc::clone(&tracer));
        let procs: Vec<Box<dyn Process>> = (0..4)
            .map(|v| {
                Box::new(Flooder {
                    is_origin: v == 0,
                    seen: false,
                }) as Box<dyn Process>
            })
            .collect();
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.deliveries.len(), 4);
        assert_eq!(report.deliveries[0].parent, None, "origin has no parent");
        assert!(report.deliveries[1..].iter().all(|d| d.parent.is_some()));
        assert!(report.deliveries.iter().all(|d| d.trace == Some(TRACE_ID)));

        let trace = tracer.trace(TRACE_ID).expect("trace collected");
        assert_eq!(trace.origin(), Some(0));
        assert!(trace.is_spanning(&BTreeSet::from([0, 1, 2, 3])));
        assert_eq!(trace.path_from_origin(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(trace.max_hops(), 3);
        assert_eq!(trace.eccentricity_us(), 300, "3 hops × 100µs");
    }

    #[test]
    fn fault_injector_drops_everything() {
        use crate::fault::{FaultInjector, LinkFaults};

        let g = path(2);
        let mut inj = FaultInjector::new(1);
        inj.set_default_rates(LinkFaults {
            drop: 1.0,
            ..LinkFaults::default()
        });
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.with_faults(Arc::new(inj));
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.messages_sent, 0);
        assert_eq!(report.messages_dropped, 1);
        assert!(report.deliveries.is_empty());
    }

    #[test]
    fn fault_injector_duplicates_deliver_twice() {
        use crate::fault::{FaultInjector, LinkFaults};

        let g = path(2);
        let mut inj = FaultInjector::new(1);
        inj.set_default_rates(LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::default()
        });
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.with_faults(Arc::new(inj));
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Pinger { is_origin: true }),
            Box::new(Pinger { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(report.messages_sent, 2, "original plus duplicate");
        assert_eq!(report.deliveries.len(), 2);
    }

    #[test]
    fn down_window_detaches_then_recovers() {
        /// Origin pings its neighbor at start and again at t = 10_000.
        struct TwoShot {
            is_origin: bool,
        }
        impl Process for TwoShot {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                if self.is_origin {
                    for &w in &ctx.neighbors().to_vec() {
                        ctx.send(w, Message::new(1, 0, Bytes::new()));
                    }
                    ctx.set_timer(10_000, 0);
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: Message, ctx: &mut Context<'_>) {
                ctx.deliver(msg);
            }
            fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
                for &w in &ctx.neighbors().to_vec() {
                    ctx.send(w, Message::new(2, 0, Bytes::new()));
                }
            }
        }

        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        sim.down_between(NodeId(1), 0, 5_000);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(TwoShot { is_origin: true }),
            Box::new(TwoShot { is_origin: false }),
        ];
        let report = sim.run(procs, 1_000_000);
        assert_eq!(
            report.deliveries.len(),
            1,
            "first ping lands in the outage; the second arrives after recovery"
        );
        assert_eq!(report.deliveries[0].broadcast_id, 2);
        assert_eq!(report.deliveries[0].time, 10_100);
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        use crate::fault::{FaultInjector, LinkFaults};

        let g = path(4);
        let run = || {
            let mut inj = FaultInjector::new(33);
            inj.set_default_rates(LinkFaults {
                drop: 0.4,
                duplicate: 0.2,
                ..LinkFaults::default()
            });
            let mut sim = Simulation::new(&g, no_jitter(), 5);
            sim.with_faults(Arc::new(inj));
            let procs: Vec<Box<dyn Process>> = vec![
                Box::new(Pinger { is_origin: true }),
                Box::new(Pinger { is_origin: false }),
                Box::new(Pinger { is_origin: false }),
                Box::new(Pinger { is_origin: false }),
            ];
            sim.run(procs, 1_000_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "is not a neighbor")]
    fn send_to_non_neighbor_is_rejected() {
        struct Bad;
        impl Process for Bad {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(NodeId(2), Message::new(0, 0, Bytes::new()));
            }
            fn on_message(&mut self, _: NodeId, _: Message, _: &mut Context<'_>) {}
        }
        let g = path(3); // 0-1-2: node 0 cannot reach 2 directly
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Bad),
            Box::new(Pinger { is_origin: false }),
            Box::new(Pinger { is_origin: false }),
        ];
        let _ = sim.run(procs, 1_000);
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn process_count_mismatch_is_rejected() {
        let g = path(2);
        let mut sim = Simulation::new(&g, no_jitter(), 0);
        let _ = sim.run(vec![], 1_000);
    }
}
