//! Thread-per-process runner: the same flooding protocol executed on real
//! OS threads with crossbeam channels as links.
//!
//! The discrete-event simulator ([`crate::sim`]) is the measurement tool;
//! this runner demonstrates that the protocol logic is concurrency-safe
//! outside the simulator: n threads, one unbounded channel per process,
//! fan-out on first receipt, termination by idle timeout.
//!
//! Channels carry **encoded frames** ([`crate::codec`]), not `Message`
//! values: every hop round-trips through the same length-prefixed wire
//! format the TCP runtime uses, so the codec is exercised on every edge.
//!
//! [`run_threaded_reliable_broadcast`] layers the reliable link protocol
//! ([`crate::reliable`]: per-link sequence numbers, ack/NACK-driven
//! retransmission, anti-entropy summaries) under the flood, so delivery
//! survives injected loss — the same protocol the simulator's
//! `ReliableFlooder` and the TCP runtime speak, here exercised under real
//! thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use lhg_graph::{Graph, NodeId};
use lhg_trace::{PathRecord, TraceCollector};

use crate::codec::{decode_frame, encode_frame};
use crate::fault::FaultInjector;
use crate::message::Message;
use crate::metrics::MetricsRegistry;

/// Outcome of a threaded broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedReport {
    /// Whether each node delivered the broadcast.
    pub delivered: Vec<bool>,
    /// Total messages sent across all channels.
    pub messages_sent: u64,
    /// Messages removed by fault injection (drops and partition cuts).
    pub messages_dropped: u64,
    /// Total encoded bytes moved across all channels (frames incl. prefix).
    pub bytes_sent: u64,
}

impl ThreadedReport {
    /// `true` if every node delivered.
    #[must_use]
    pub fn all_delivered(&self) -> bool {
        self.delivered.iter().all(|&d| d)
    }

    /// Number of nodes that delivered.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.delivered.iter().filter(|&&d| d).count()
    }
}

/// Runs one flooding broadcast from `origin` over `graph`, with one OS
/// thread per node. `idle_timeout` is how long a process waits for traffic
/// before concluding the flood has quiesced.
///
/// `crashed` nodes never start; their channels silently swallow messages —
/// the fail-stop model.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or listed in `crashed`.
#[must_use]
pub fn run_threaded_broadcast(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    crashed: &[NodeId],
    idle_timeout: Duration,
) -> ThreadedReport {
    run_threaded_broadcast_with_metrics(
        graph,
        origin,
        payload,
        crashed,
        idle_timeout,
        &MetricsRegistry::new(),
    )
}

/// Like [`run_threaded_broadcast`], additionally recording into `metrics`:
/// counters `threaded.messages_sent` / `threaded.bytes_sent` and histogram
/// `threaded.frame_bytes`.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or listed in `crashed`.
#[must_use]
pub fn run_threaded_broadcast_with_metrics(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    crashed: &[NodeId],
    idle_timeout: Duration,
    metrics: &MetricsRegistry,
) -> ThreadedReport {
    run_inner(
        graph,
        origin,
        payload,
        crashed,
        idle_timeout,
        metrics,
        None,
        None,
    )
}

/// Like [`run_threaded_broadcast_with_metrics`], additionally stamping the
/// broadcast with `trace_id` on the wire (frames cross every channel with
/// the trace extension encoded) and contributing one [`PathRecord`] per
/// delivery to `tracer`, so the realized dissemination tree of the run can
/// be reconstructed afterwards.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or listed in `crashed`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_broadcast_traced(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    crashed: &[NodeId],
    idle_timeout: Duration,
    metrics: &MetricsRegistry,
    trace_id: u64,
    tracer: &Arc<TraceCollector>,
) -> ThreadedReport {
    run_inner(
        graph,
        origin,
        payload,
        crashed,
        idle_timeout,
        metrics,
        Some((trace_id, Arc::clone(tracer))),
        None,
    )
}

/// Like [`run_threaded_broadcast_with_metrics`] with a [`FaultInjector`]
/// consulted on every channel send: drops, duplicates, and partitions
/// apply per-frame (keyed on a process-wide send counter, wall-clock µs
/// since the run started for partition windows). Extra-delay and reorder
/// rates are ignored here — real channels are FIFO and the runner has no
/// timer wheel; use the simulator or the TCP runtime to exercise those.
///
/// # Panics
///
/// Panics if `origin` is out of bounds or listed in `crashed`.
#[must_use]
pub fn run_threaded_broadcast_chaos(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    crashed: &[NodeId],
    idle_timeout: Duration,
    metrics: &MetricsRegistry,
    faults: &Arc<FaultInjector>,
) -> ThreadedReport {
    run_inner(
        graph,
        origin,
        payload,
        crashed,
        idle_timeout,
        metrics,
        None,
        Some(Arc::clone(faults)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    crashed: &[NodeId],
    idle_timeout: Duration,
    metrics: &MetricsRegistry,
    tracing: Option<(u64, Arc<TraceCollector>)>,
    faults: Option<Arc<FaultInjector>>,
) -> ThreadedReport {
    let n = graph.node_count();
    assert!(origin.index() < n, "origin {origin} out of bounds");
    assert!(!crashed.contains(&origin), "origin must not be crashed");

    let mut senders: Vec<Sender<(usize, Bytes)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<(usize, Bytes)>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let delivered: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(vec![false; n]));
    let epoch = Instant::now(); // shared time zero for all PathRecords
    let messages_sent = Arc::new(AtomicU64::new(0));
    let messages_dropped = Arc::new(AtomicU64::new(0));
    let fault_seq = Arc::new(AtomicU64::new(0));
    let bytes_sent = Arc::new(AtomicU64::new(0));
    let frame_bytes_hist = metrics.histogram("threaded.frame_bytes");
    let wire = metrics.wire();
    let is_crashed: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in crashed {
            v[c.index()] = true;
        }
        v
    };

    let mut handles = Vec::new();
    for v in 0..n {
        if is_crashed[v] {
            continue; // fail-stop: never runs; its channel absorbs sends
        }
        let rx = receivers[v].take().expect("receiver present");
        let neighbor_txs: Vec<(usize, Sender<(usize, Bytes)>)> = graph
            .neighbors(NodeId(v))
            .map(|w| (w.index(), senders[w.index()].clone()))
            .collect();
        let delivered = Arc::clone(&delivered);
        let messages_sent = Arc::clone(&messages_sent);
        let messages_dropped = Arc::clone(&messages_dropped);
        let fault_seq = Arc::clone(&fault_seq);
        let bytes_sent = Arc::clone(&bytes_sent);
        let frame_bytes_hist = Arc::clone(&frame_bytes_hist);
        let wire = Arc::clone(&wire);
        let tracing = tracing.clone();
        let faults = faults.clone();
        let start_payload = (v == origin.index()).then(|| {
            let msg = Message::new(1, v as u32, payload.clone());
            match &tracing {
                Some((trace_id, _)) => msg.with_trace(*trace_id),
                None => msg,
            }
        });
        handles.push(std::thread::spawn(move || {
            let mut seen = std::collections::HashSet::new();
            let send_to = |to: usize, frame: &Bytes, tx: &Sender<(usize, Bytes)>| {
                let copies = match &faults {
                    Some(f) => f.decide(
                        v as u32,
                        to as u32,
                        f.elapsed_us(),
                        fault_seq.fetch_add(1, Ordering::Relaxed),
                    ),
                    None => vec![0],
                };
                if copies.is_empty() {
                    messages_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                for _ in &copies {
                    messages_sent.fetch_add(1, Ordering::Relaxed);
                    bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
                    frame_bytes_hist.record(frame.len() as u64);
                    if let Some(id) = crate::wirecost::peek_broadcast_id(frame) {
                        wire.record(v as u32, to as u32, id, frame.len() as u64);
                    }
                    let _ = tx.send((v, frame.clone()));
                }
            };
            let record_delivery = |parent: Option<u32>, hops: u32, trace: Option<u64>| {
                if let (Some((_, tracer)), Some(trace_id)) = (&tracing, trace) {
                    tracer.record(PathRecord {
                        trace_id,
                        node: v as u32,
                        parent,
                        hops,
                        at_us: u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
                    });
                }
            };
            if let Some(msg) = start_payload {
                seen.insert(msg.broadcast_id);
                delivered.lock()[v] = true;
                record_delivery(None, 0, msg.trace);
                // Send the hop-incremented copy so a receiver's `hops` field
                // equals the number of edges the copy travelled.
                let frame = encode_frame(&msg.forwarded());
                for (w, tx) in &neighbor_txs {
                    send_to(*w, &frame, tx);
                }
            }
            while let Ok((from, frame)) = rx.recv_timeout(idle_timeout) {
                let msg = decode_frame(&frame).expect("peers only send valid frames");
                if !seen.insert(msg.broadcast_id) {
                    continue;
                }
                delivered.lock()[v] = true;
                record_delivery(Some(from as u32), msg.hops, msg.trace);
                let fwd = encode_frame(&msg.forwarded());
                for (w, tx) in &neighbor_txs {
                    if *w != from {
                        send_to(*w, &fwd, tx);
                    }
                }
            }
        }));
    }
    // Drop our copies so channels close once threads exit.
    drop(senders);
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let delivered = Arc::try_unwrap(delivered)
        .expect("all threads joined")
        .into_inner();
    let messages_sent = messages_sent.load(Ordering::Relaxed);
    let messages_dropped = messages_dropped.load(Ordering::Relaxed);
    let bytes_sent = bytes_sent.load(Ordering::Relaxed);
    metrics.counter("threaded.messages_sent").add(messages_sent);
    metrics
        .counter("threaded.messages_dropped")
        .add(messages_dropped);
    metrics.counter("threaded.bytes_sent").add(bytes_sent);
    ThreadedReport {
        delivered,
        messages_sent,
        messages_dropped,
        bytes_sent,
    }
}

/// Runs one flooding broadcast from `origin` with the reliable link layer
/// ([`crate::reliable`]) underneath: every data frame carries a per-link
/// sequence number, receivers emit cumulative acks with selective NACKs,
/// senders retransmit on NACK or timeout, and nodes periodically exchange
/// anti-entropy summaries of recently-delivered broadcast ids (pulling
/// whatever they miss). With a `faults` injector dropping or duplicating
/// frames, every node still delivers exactly once — the threaded analogue
/// of the simulator's [`crate::reliable::ReliableFlooder`] and the TCP
/// runtime's reliable data plane.
///
/// Unlike the best-effort runners there is no idle-timeout quiescence —
/// acks and summaries keep links chatty — so the run executes for the
/// fixed `duration` and then stops. Choose it to comfortably exceed a few
/// retransmit timeouts plus one or two summary periods.
///
/// # Panics
///
/// Panics if `origin` is out of bounds.
#[must_use]
pub fn run_threaded_reliable_broadcast(
    graph: &Graph,
    origin: NodeId,
    payload: Bytes,
    cfg: crate::reliable::ReliableConfig,
    duration: Duration,
    metrics: &MetricsRegistry,
    faults: Option<Arc<FaultInjector>>,
) -> ThreadedReport {
    use crate::reliable::{self, LinkReceiver, LinkSender, ACK_TAG, MAX_SUMMARY_IDS, SUMMARY_TAG};
    use std::collections::{HashMap, HashSet, VecDeque};

    let n = graph.node_count();
    assert!(origin.index() < n, "origin {origin} out of bounds");

    let mut senders: Vec<Sender<(usize, Bytes)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<(usize, Bytes)>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let delivered: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(vec![false; n]));
    let epoch = Instant::now();
    let deadline = epoch + duration;
    let messages_sent = Arc::new(AtomicU64::new(0));
    let messages_dropped = Arc::new(AtomicU64::new(0));
    let fault_seq = Arc::new(AtomicU64::new(0));
    let bytes_sent = Arc::new(AtomicU64::new(0));
    let wire = metrics.wire();

    let mut handles = Vec::new();
    for (v, slot) in receivers.iter_mut().enumerate() {
        let rx = slot.take().expect("receiver present");
        let neighbor_txs: Vec<(usize, Sender<(usize, Bytes)>)> = graph
            .neighbors(NodeId(v))
            .map(|w| (w.index(), senders[w.index()].clone()))
            .collect();
        let delivered = Arc::clone(&delivered);
        let messages_sent = Arc::clone(&messages_sent);
        let messages_dropped = Arc::clone(&messages_dropped);
        let fault_seq = Arc::clone(&fault_seq);
        let bytes_sent = Arc::clone(&bytes_sent);
        let wire = Arc::clone(&wire);
        let faults = faults.clone();
        let start_payload =
            (v == origin.index()).then(|| Message::new(1, v as u32, payload.clone()));
        handles.push(std::thread::spawn(move || {
            let mut seen = HashSet::new();
            let mut link_tx: HashMap<usize, LinkSender> = HashMap::new();
            let mut link_rx: HashMap<usize, LinkReceiver> = HashMap::new();
            let mut store: HashMap<u64, Message> = HashMap::new();
            let mut recent: VecDeque<u64> = VecDeque::new();
            let tick = Duration::from_micros(cfg.tick_us.max(1));
            let mut ticks: u64 = 0;

            let send_to = |to: usize, frame: &Bytes, tx: &Sender<(usize, Bytes)>| {
                let copies = match &faults {
                    Some(f) => f.decide(
                        v as u32,
                        to as u32,
                        f.elapsed_us(),
                        fault_seq.fetch_add(1, Ordering::Relaxed),
                    ),
                    None => vec![0],
                };
                if copies.is_empty() {
                    messages_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                for _ in &copies {
                    messages_sent.fetch_add(1, Ordering::Relaxed);
                    bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
                    if let Some(id) = crate::wirecost::peek_broadcast_id(frame) {
                        wire.record(v as u32, to as u32, id, frame.len() as u64);
                    }
                    let _ = tx.send((v, frame.clone()));
                }
            };
            // Wraps a data message in per-link reliability before it hits
            // the channel; `None` from `send` means window-full (queued —
            // it surfaces from a later ack or sweep).
            let reliable_send = |to: usize,
                                 tx: &Sender<(usize, Bytes)>,
                                 link_tx: &mut HashMap<usize, LinkSender>,
                                 msg: Message,
                                 now_us: u64| {
                if let Some(stamped) = link_tx.entry(to).or_default().send(msg, &cfg, now_us) {
                    send_to(to, &encode_frame(&stamped), tx);
                }
            };
            let remember =
                |store: &mut HashMap<u64, Message>, recent: &mut VecDeque<u64>, msg: &Message| {
                    if store.len() >= cfg.store_cap {
                        if let Some(old) = recent.pop_front() {
                            store.remove(&old);
                        }
                    }
                    let mut kept = msg.clone();
                    kept.link_seq = None;
                    store.insert(msg.broadcast_id, kept);
                    recent.push_back(msg.broadcast_id);
                };

            if let Some(msg) = start_payload {
                let now_us = epoch.elapsed().as_micros() as u64;
                seen.insert(msg.broadcast_id);
                delivered.lock()[v] = true;
                remember(&mut store, &mut recent, &msg);
                let fwd = msg.forwarded();
                for (w, tx) in &neighbor_txs {
                    reliable_send(*w, tx, &mut link_tx, fwd.clone(), now_us);
                }
            }

            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = tick.min(deadline - now);
                match rx.recv_timeout(wait) {
                    Ok((from, frame)) => {
                        let msg = decode_frame(&frame).expect("peers only send valid frames");
                        let now_us = epoch.elapsed().as_micros() as u64;
                        if msg.broadcast_id == ACK_TAG {
                            if let Some((cum, nacks)) =
                                reliable::decode_ack_payload(msg.payload.clone())
                            {
                                let frames = match link_tx.get_mut(&from) {
                                    Some(tx) => tx.on_ack(cum, &nacks, &cfg, now_us),
                                    None => Vec::new(),
                                };
                                if let Some((_, tx)) = neighbor_txs.iter().find(|(w, _)| *w == from)
                                {
                                    for f in frames {
                                        send_to(from, &encode_frame(&f), tx);
                                    }
                                }
                            }
                            continue;
                        }
                        if msg.broadcast_id == SUMMARY_TAG {
                            if let Some((pull, ids)) =
                                reliable::decode_summary_payload(msg.payload.clone())
                            {
                                let Some((_, tx)) = neighbor_txs.iter().find(|(w, _)| *w == from)
                                else {
                                    continue;
                                };
                                if pull {
                                    for id in ids {
                                        if let Some(stored) = store.get(&id) {
                                            reliable_send(
                                                from,
                                                tx,
                                                &mut link_tx,
                                                stored.clone(),
                                                now_us,
                                            );
                                        }
                                    }
                                } else {
                                    let missing: Vec<u64> =
                                        ids.into_iter().filter(|id| !seen.contains(id)).collect();
                                    if !missing.is_empty() {
                                        let frame = encode_frame(&Message::new(
                                            SUMMARY_TAG,
                                            v as u32,
                                            reliable::encode_summary_payload(true, &missing),
                                        ));
                                        send_to(from, &frame, tx);
                                    }
                                }
                            }
                            continue;
                        }
                        // Data: link-level dedup, then flooding dedup.
                        if let Some(seq) = msg.link_seq {
                            if !link_rx.entry(from).or_default().on_frame(seq) {
                                continue;
                            }
                        }
                        if !seen.insert(msg.broadcast_id) {
                            continue;
                        }
                        delivered.lock()[v] = true;
                        remember(&mut store, &mut recent, &msg);
                        let fwd = msg.forwarded();
                        for (w, tx) in &neighbor_txs {
                            if *w != from {
                                reliable_send(*w, tx, &mut link_tx, fwd.clone(), now_us);
                            }
                        }
                    }
                    Err(_) => {
                        // Tick: retransmit sweeps, pending acks, summaries.
                        ticks += 1;
                        let now_us = epoch.elapsed().as_micros() as u64;
                        for (w, tx) in &neighbor_txs {
                            if let Some(ltx) = link_tx.get_mut(w) {
                                for f in ltx.sweep(&cfg, now_us) {
                                    send_to(*w, &encode_frame(&f), tx);
                                }
                            }
                            if let Some(lrx) = link_rx.get_mut(w) {
                                if lrx.dirty() {
                                    let (cum, nacks) = lrx.ack_payload();
                                    let frame = encode_frame(&Message::new(
                                        ACK_TAG,
                                        v as u32,
                                        reliable::encode_ack_payload(cum, &nacks),
                                    ));
                                    send_to(*w, &frame, tx);
                                }
                            }
                        }
                        if ticks.is_multiple_of(cfg.summary_every.max(1)) && !recent.is_empty() {
                            let ids: Vec<u64> =
                                recent.iter().rev().take(MAX_SUMMARY_IDS).copied().collect();
                            let frame = encode_frame(&Message::new(
                                SUMMARY_TAG,
                                v as u32,
                                reliable::encode_summary_payload(false, &ids),
                            ));
                            for (w, tx) in &neighbor_txs {
                                send_to(*w, &frame, tx);
                            }
                        }
                    }
                }
            }
        }));
    }
    drop(senders);
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let delivered = Arc::try_unwrap(delivered)
        .expect("all threads joined")
        .into_inner();
    let messages_sent = messages_sent.load(Ordering::Relaxed);
    let messages_dropped = messages_dropped.load(Ordering::Relaxed);
    let bytes_sent = bytes_sent.load(Ordering::Relaxed);
    metrics.counter("threaded.messages_sent").add(messages_sent);
    metrics
        .counter("threaded.messages_dropped")
        .add(messages_dropped);
    metrics.counter("threaded.bytes_sent").add(bytes_sent);
    ThreadedReport {
        delivered,
        messages_sent,
        messages_dropped,
        bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn timeout() -> Duration {
        Duration::from_millis(200)
    }

    #[test]
    fn threaded_flood_covers_cycle() {
        let g = cycle(8);
        let r = run_threaded_broadcast(&g, NodeId(0), Bytes::from_static(b"hi"), &[], timeout());
        assert!(r.all_delivered());
        assert!(r.messages_sent >= 8, "at least one traversal of the cycle");
    }

    #[test]
    fn threaded_flood_tolerates_one_crash() {
        let g = cycle(8);
        let r = run_threaded_broadcast(&g, NodeId(0), Bytes::new(), &[NodeId(4)], timeout());
        assert_eq!(r.delivered_count(), 7, "all correct nodes deliver");
        assert!(!r.delivered[4]);
    }

    #[test]
    fn threaded_flood_splits_under_two_crashes() {
        let g = cycle(8);
        let r = run_threaded_broadcast(
            &g,
            NodeId(0),
            Bytes::new(),
            &[NodeId(2), NodeId(6)],
            timeout(),
        );
        assert!(!r.all_delivered());
        assert_eq!(r.delivered_count(), 3, "only 7,0,1 reachable");
    }

    #[test]
    fn reliable_threaded_flood_survives_heavy_loss() {
        use crate::fault::LinkFaults;
        use crate::reliable::ReliableConfig;

        // 30% drop + 10% duplication on every channel send: a best-effort
        // threaded flood on a cycle would almost surely miss someone; the
        // reliable layer (retransmits + anti-entropy) must not.
        let g = cycle(8);
        let mut inj = FaultInjector::new(0xC0FFEE);
        inj.set_default_rates(LinkFaults {
            drop: 0.3,
            duplicate: 0.1,
            ..LinkFaults::default()
        });
        let cfg = ReliableConfig {
            rto_us: 5_000,
            tick_us: 2_000,
            summary_every: 3,
            ..ReliableConfig::default()
        };
        let reg = MetricsRegistry::new();
        let r = run_threaded_reliable_broadcast(
            &g,
            NodeId(0),
            Bytes::from_static(b"reliable"),
            cfg,
            Duration::from_millis(400),
            &reg,
            Some(Arc::new(inj)),
        );
        assert!(
            r.all_delivered(),
            "delivered = {:?} despite reliable layer",
            r.delivered
        );
        assert!(r.messages_dropped > 0, "injector was live");
    }

    #[test]
    fn reliable_threaded_flood_is_quiet_on_clean_links() {
        use crate::reliable::ReliableConfig;

        let g = cycle(6);
        let reg = MetricsRegistry::new();
        let r = run_threaded_reliable_broadcast(
            &g,
            NodeId(0),
            Bytes::from_static(b"clean"),
            ReliableConfig::default(),
            Duration::from_millis(150),
            &reg,
            None,
        );
        assert!(r.all_delivered());
        assert_eq!(r.messages_dropped, 0);
    }

    #[test]
    fn metrics_capture_wire_traffic() {
        let g = cycle(6);
        let reg = MetricsRegistry::new();
        let r = run_threaded_broadcast_with_metrics(
            &g,
            NodeId(0),
            Bytes::from_static(b"pay"),
            &[],
            timeout(),
            &reg,
        );
        assert!(r.all_delivered());
        assert_eq!(reg.counter("threaded.messages_sent").get(), r.messages_sent);
        assert_eq!(reg.counter("threaded.bytes_sent").get(), r.bytes_sent);
        assert_eq!(
            reg.histogram("threaded.frame_bytes").count(),
            r.messages_sent
        );
        // Every frame carries at least the length prefix plus a 20-byte header.
        assert!(r.bytes_sent >= r.messages_sent * 24);
    }

    #[test]
    fn traced_run_reconstructs_spanning_tree_across_real_threads() {
        use std::collections::BTreeSet;

        let g = cycle(8);
        let reg = MetricsRegistry::new();
        let tracer = Arc::new(TraceCollector::new());
        let r = run_threaded_broadcast_traced(
            &g,
            NodeId(0),
            Bytes::from_static(b"traced"),
            &[NodeId(5)],
            timeout(),
            &reg,
            0xAB,
            &tracer,
        );
        assert_eq!(r.delivered_count(), 7);
        let trace = tracer.trace(0xAB).expect("trace collected");
        assert_eq!(trace.origin(), Some(0));
        let survivors: BTreeSet<u32> = (0..8u32).filter(|&v| v != 5).collect();
        assert!(trace.is_spanning(&survivors), "tree spans all survivors");
        // On a cycle with node 5 down, node 4 is only reachable the long
        // way round: 0-1-2-3-4 (4 hops).
        assert_eq!(trace.max_hops(), 4);
        // Trace extension crossed the wire: frames are 9 bytes longer.
        assert!(r.bytes_sent >= r.messages_sent * (24 + 9));
    }

    #[test]
    fn chaos_partition_blocks_half_the_ring() {
        use crate::fault::{FaultInjector, Partition};
        use std::collections::BTreeSet;

        // Cut {0..3} from {4..7} on an 8-cycle: the flood cannot leave the
        // origin's side.
        let g = cycle(8);
        let mut inj = FaultInjector::new(9);
        inj.add_partition(Partition {
            a: BTreeSet::from([0, 1, 2, 3]),
            b: BTreeSet::from([4, 5, 6, 7]),
            from_us: 0,
            until_us: u64::MAX,
            directed: false,
        });
        let reg = MetricsRegistry::new();
        let r = run_threaded_broadcast_chaos(
            &g,
            NodeId(0),
            Bytes::from_static(b"cut"),
            &[],
            timeout(),
            &reg,
            &Arc::new(inj),
        );
        assert_eq!(r.delivered_count(), 4, "only the origin side delivers");
        assert!((0..4).all(|v| r.delivered[v]));
        assert!((4..8).all(|v| !r.delivered[v]));
        assert!(r.messages_dropped >= 2, "both cut edges dropped frames");
        assert_eq!(
            reg.counter("threaded.messages_dropped").get(),
            r.messages_dropped
        );
    }

    #[test]
    fn chaos_clean_injector_changes_nothing() {
        let g = cycle(6);
        let reg = MetricsRegistry::new();
        let inj = Arc::new(crate::fault::FaultInjector::new(4));
        let r = run_threaded_broadcast_chaos(
            &g,
            NodeId(0),
            Bytes::from_static(b"ok"),
            &[],
            timeout(),
            &reg,
            &inj,
        );
        assert!(r.all_delivered());
        assert_eq!(r.messages_dropped, 0);
    }

    #[test]
    #[should_panic(expected = "origin must not be crashed")]
    fn crashed_origin_rejected() {
        let g = cycle(4);
        let _ = run_threaded_broadcast(&g, NodeId(0), Bytes::new(), &[NodeId(0)], timeout());
    }
}
