//! Deterministic per-link fault injection.
//!
//! [`FaultInjector`] is the shared seam every engine (the discrete-event
//! simulator, the threaded runner, and the TCP runtime) consults before a
//! frame crosses a link. Decisions are *deterministic functions of the
//! injector seed and the frame's identity* — a hash of
//! `(seed, from, to, seq)` — never of shared mutable RNG state. Two runs
//! with the same seed and the same per-link sequence numbers therefore make
//! identical drop/duplicate/delay choices regardless of thread
//! interleaving, which is what makes chaos failures reproducible from a
//! printed seed.
//!
//! The injector models four fault families:
//!
//! * **link rates** ([`LinkFaults`]) — per-link drop / duplicate /
//!   extra-delay / reorder probabilities, with a default applying to every
//!   link and per-link overrides;
//! * **partitions** ([`Partition`]) — time-windowed, optionally directed
//!   cuts between two node sets (an empty `b` side means "everyone else");
//! * **node down windows** — closed-open `[from, until)` intervals during
//!   which a node is dead; the sim maps these onto crash/recover events and
//!   the TCP runtime uses them for kill/rejoin schedules;
//! * **dial blocking** — [`FaultInjector::blocked`] also gates connection
//!   establishment in the TCP runtime so a partitioned node cannot simply
//!   re-dial through the cut.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Per-link fault rates. All probabilities are in `[0, 1]`; the default is
/// a perfectly clean link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Extra latency (microseconds) added to every frame on the link.
    pub extra_delay_us: u64,
    /// Probability a frame is additionally delayed by a random amount in
    /// `[0, reorder_window_us]`, letting later frames overtake it.
    pub reorder: f64,
    /// Maximum reorder displacement in microseconds.
    pub reorder_window_us: u64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            extra_delay_us: 0,
            reorder: 0.0,
            reorder_window_us: 0,
        }
    }
}

impl LinkFaults {
    /// True when this configuration never perturbs traffic.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.extra_delay_us == 0 && self.reorder == 0.0
    }
}

/// A time-windowed cut between two node sets.
///
/// While active (`from_us <= now < until_us`), frames from a node in `a` to
/// a node in `b` are blocked; undirected partitions block the reverse
/// direction too. An empty `b` is a wildcard: it matches every node not in
/// `a`, which is how single-node isolation and heartbeat flaps are
/// expressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: BTreeSet<u32>,
    /// The other side; empty means "all nodes not in `a`".
    pub b: BTreeSet<u32>,
    /// Activation time (microseconds since the injector epoch).
    pub from_us: u64,
    /// Deactivation time; `u64::MAX` means "until cleared".
    pub until_us: u64,
    /// When true only the `a → b` direction is cut.
    pub directed: bool,
}

impl Partition {
    /// True when the partition blocks `from → to` at time `now_us`.
    fn blocks(&self, from: u32, to: u32, now_us: u64) -> bool {
        if now_us < self.from_us || now_us >= self.until_us {
            return false;
        }
        let in_a = |n: u32| self.a.contains(&n);
        let in_b = |n: u32| {
            if self.b.is_empty() {
                !self.a.contains(&n)
            } else {
                self.b.contains(&n)
            }
        };
        let forward = in_a(from) && in_b(to);
        let backward = in_a(to) && in_b(from);
        forward || (!self.directed && backward)
    }
}

/// SplitMix64 finalizer: avalanche-mixes one word.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 53 bits of a mixed word to a uniform float in `[0, 1)`.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Compiled, engine-agnostic fault state.
///
/// Thread-safe: the TCP runtime shares one injector (behind `Arc`) across
/// every node thread. Partitions can be added and cleared at run time —
/// that mutation is the only interior mutability; probabilistic decisions
/// never mutate.
pub struct FaultInjector {
    seed: u64,
    default_rates: LinkFaults,
    link_overrides: HashMap<(u32, u32), LinkFaults>,
    partitions: Mutex<Vec<Partition>>,
    node_down: HashMap<u32, Vec<(u64, u64)>>,
    epoch: Instant,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("default_rates", &self.default_rates)
            .field("link_overrides", &self.link_overrides.len())
            .field("node_down", &self.node_down.len())
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Creates a clean injector (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            default_rates: LinkFaults::default(),
            link_overrides: HashMap::new(),
            partitions: Mutex::new(Vec::new()),
            node_down: HashMap::new(),
            epoch: Instant::now(),
        }
    }

    /// The decision seed (printed by the chaos runner to reproduce a run).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the rates applied to every link without an override.
    pub fn set_default_rates(&mut self, rates: LinkFaults) {
        self.default_rates = rates;
    }

    /// Overrides the rates on the directed link `from → to`.
    pub fn set_link(&mut self, from: u32, to: u32, rates: LinkFaults) {
        self.link_overrides.insert((from, to), rates);
    }

    /// Schedules a partition (see [`Partition`] for the window semantics).
    pub fn add_partition(&mut self, partition: Partition) {
        self.partitions.lock().unwrap().push(partition);
    }

    /// Adds a partition through the shared reference, for runtime
    /// orchestration while node threads hold the injector.
    pub fn add_partition_shared(&self, partition: Partition) {
        self.partitions.lock().unwrap().push(partition);
    }

    /// Removes every scheduled partition (heals all cuts immediately).
    pub fn clear_partitions(&self) {
        self.partitions.lock().unwrap().clear();
    }

    /// Marks `node` as down during `[from_us, until_us)`.
    pub fn set_node_down(&mut self, node: u32, from_us: u64, until_us: u64) {
        self.node_down
            .entry(node)
            .or_default()
            .push((from_us, until_us));
    }

    /// True when `node` is inside one of its down windows at `now_us`.
    pub fn node_down(&self, node: u32, now_us: u64) -> bool {
        self.node_down
            .get(&node)
            .is_some_and(|ws| ws.iter().any(|&(f, u)| now_us >= f && now_us < u))
    }

    /// The down windows scheduled for `node` (used by the sim to derive
    /// crash/recover events and by the chaos runner for its oracle).
    pub fn down_windows(&self, node: u32) -> &[(u64, u64)] {
        self.node_down.get(&node).map_or(&[], |v| v.as_slice())
    }

    /// True when an active partition cuts `from → to` at `now_us`.
    ///
    /// The TCP runtime also consults this before *dialing*, so connection
    /// establishment respects partitions, not just frames.
    pub fn blocked(&self, from: u32, to: u32, now_us: u64) -> bool {
        self.partitions
            .lock()
            .unwrap()
            .iter()
            .any(|p| p.blocks(from, to, now_us))
    }

    /// The fault rates in force on `from → to`.
    pub fn rates(&self, from: u32, to: u32) -> LinkFaults {
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_rates)
    }

    /// Decides the fate of frame number `seq` on `from → to` at `now_us`.
    ///
    /// Returns the extra delays (microseconds) of the copies to deliver: an
    /// empty vector means the frame is dropped; one entry is normal
    /// delivery; two entries is a duplicate. Deterministic in
    /// `(seed, from, to, seq)` — `now_us` only gates partitions.
    pub fn decide(&self, from: u32, to: u32, now_us: u64, seq: u64) -> Vec<u64> {
        if self.blocked(from, to, now_us) {
            return Vec::new();
        }
        let rates = self.rates(from, to);
        if rates.is_clean() {
            return vec![0];
        }
        let base = mix64(self.seed ^ mix64((u64::from(from) << 32) | u64::from(to)) ^ mix64(seq));
        if rates.drop > 0.0 && unit(base) < rates.drop {
            return Vec::new();
        }
        let mut delay = rates.extra_delay_us;
        if rates.reorder > 0.0 && rates.reorder_window_us > 0 {
            let r = mix64(base ^ 0xA5A5_A5A5_A5A5_A5A5);
            if unit(r) < rates.reorder {
                delay += mix64(r) % (rates.reorder_window_us + 1);
            }
        }
        let mut copies = vec![delay];
        if rates.duplicate > 0.0 {
            let d = mix64(base ^ 0x5A5A_5A5A_5A5A_5A5A);
            if unit(d) < rates.duplicate {
                copies.push(delay + mix64(d) % 1_000);
            }
        }
        copies
    }

    /// Microseconds elapsed since the injector was created; the wall-clock
    /// engines use this as `now_us` for partition and down-window checks.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_injector_passes_everything() {
        let inj = FaultInjector::new(7);
        for seq in 0..100 {
            assert_eq!(inj.decide(0, 1, 0, seq), vec![0]);
        }
        assert!(!inj.blocked(0, 1, 0));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let mut a = FaultInjector::new(1);
        let mut b = FaultInjector::new(1);
        let mut c = FaultInjector::new(2);
        let rates = LinkFaults {
            drop: 0.5,
            ..LinkFaults::default()
        };
        a.set_default_rates(rates);
        b.set_default_rates(rates);
        c.set_default_rates(rates);
        let fate = |inj: &FaultInjector| -> Vec<usize> {
            (0..256).map(|seq| inj.decide(2, 3, 0, seq).len()).collect()
        };
        assert_eq!(fate(&a), fate(&b));
        assert_ne!(fate(&a), fate(&c), "different seeds should diverge");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut inj = FaultInjector::new(99);
        inj.set_default_rates(LinkFaults {
            drop: 0.3,
            ..LinkFaults::default()
        });
        let dropped = (0..10_000)
            .filter(|&seq| inj.decide(0, 1, 0, seq).is_empty())
            .count();
        assert!((2500..3500).contains(&dropped), "got {dropped}");
    }

    #[test]
    fn duplicate_yields_two_copies() {
        let mut inj = FaultInjector::new(5);
        inj.set_default_rates(LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::default()
        });
        let copies = inj.decide(0, 1, 0, 42);
        assert_eq!(copies.len(), 2);
    }

    #[test]
    fn link_override_beats_default() {
        let mut inj = FaultInjector::new(3);
        inj.set_default_rates(LinkFaults {
            drop: 1.0,
            ..LinkFaults::default()
        });
        inj.set_link(4, 5, LinkFaults::default());
        assert!(inj.decide(0, 1, 0, 0).is_empty(), "default drops");
        assert_eq!(inj.decide(4, 5, 0, 0), vec![0], "override is clean");
    }

    #[test]
    fn partition_windows_and_directionality() {
        let mut inj = FaultInjector::new(0);
        inj.add_partition(Partition {
            a: BTreeSet::from([0, 1]),
            b: BTreeSet::from([2]),
            from_us: 100,
            until_us: 200,
            directed: false,
        });
        assert!(!inj.blocked(0, 2, 50), "before window");
        assert!(inj.blocked(0, 2, 150), "inside window");
        assert!(inj.blocked(2, 1, 150), "undirected cuts both ways");
        assert!(!inj.blocked(0, 1, 150), "same side stays connected");
        assert!(!inj.blocked(0, 2, 200), "window end is exclusive");

        inj.add_partition(Partition {
            a: BTreeSet::from([7]),
            b: BTreeSet::new(),
            from_us: 0,
            until_us: u64::MAX,
            directed: true,
        });
        assert!(inj.blocked(7, 3, 0), "wildcard b matches everyone else");
        assert!(!inj.blocked(3, 7, 0), "directed leaves reverse path");

        inj.clear_partitions();
        assert!(!inj.blocked(0, 2, 150));
        assert!(!inj.blocked(7, 3, 0));
    }

    #[test]
    fn node_down_windows() {
        let mut inj = FaultInjector::new(0);
        inj.set_node_down(3, 1_000, 2_000);
        inj.set_node_down(3, 5_000, u64::MAX);
        assert!(!inj.node_down(3, 500));
        assert!(inj.node_down(3, 1_500));
        assert!(!inj.node_down(3, 3_000));
        assert!(inj.node_down(3, 9_000_000));
        assert!(!inj.node_down(4, 1_500));
        assert_eq!(inj.down_windows(3).len(), 2);
        assert!(inj.down_windows(4).is_empty());
    }

    #[test]
    fn blocked_frames_are_dropped_regardless_of_rates() {
        let mut inj = FaultInjector::new(0);
        inj.add_partition(Partition {
            a: BTreeSet::from([0]),
            b: BTreeSet::from([1]),
            from_us: 0,
            until_us: u64::MAX,
            directed: false,
        });
        assert!(inj.decide(0, 1, 0, 0).is_empty());
        assert!(inj.decide(1, 0, 0, 0).is_empty());
        assert_eq!(inj.decide(0, 2, 0, 0), vec![0]);
    }
}
