//! Lock-light metrics registry shared by the simulators and the TCP
//! runtime.
//!
//! Three instrument kinds cover what the experiments need:
//!
//! * [`Counter`] — monotone event counts (messages sent, bytes on wire,
//!   reconnects);
//! * [`Gauge`] — instantaneous values that move both ways (open
//!   connections, live members);
//! * [`Histogram`] — latency distributions in log₂ buckets (broadcast
//!   delivery time, reconnect time), with approximate percentiles.
//!
//! Instruments are plain atomics behind `Arc`s, so recording never takes a
//! lock; the registry's `parking_lot::RwLock` maps are touched only on
//! first registration and on snapshot. [`MetricsRegistry::snapshot`]
//! renders everything into a [`serde::Value`] tree, which
//! `serde_json::to_string_pretty` turns into the JSON the CLI and the
//! examples print.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// A latency/size distribution in log₂ buckets.
///
/// `record(v)` files `v` under bucket `⌈log₂(v+1)⌉`; percentiles are
/// reported as the upper bound of the bucket containing the rank, which is
/// within 2× of the true value — plenty for the order-of-magnitude
/// comparisons the experiments make.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        // `u64::MAX` has no leading zeros, which would index one past the
        // last bucket — saturate into it instead of panicking.
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i).wrapping_sub(1).max(1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Observations and sum accumulated since `cursor` was last advanced,
    /// without disturbing the histogram (concurrent writers keep
    /// recording; other readers see cumulative totals as before). The
    /// cursor is advanced to the levels read, so consecutive calls
    /// partition the stream into non-overlapping intervals — this is what
    /// lets a sampler report per-interval rates instead of
    /// cumulative-only values.
    ///
    /// Bucket counts are diffed per bucket, so a merged timeline can
    /// recompute interval percentiles; `min`/`max` are lifetime values
    /// (atomics cannot be rewound per-interval) and are reported as-is.
    pub fn delta_since(&self, cursor: &mut HistogramCursor) -> HistogramDelta {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let now = b.load(Ordering::Relaxed);
            buckets[i] = now.wrapping_sub(cursor.buckets[i]);
            cursor.buckets[i] = now;
            count = count.wrapping_add(buckets[i]);
        }
        let sum_now = self.sum.load(Ordering::Relaxed);
        let sum = sum_now.wrapping_sub(cursor.sum);
        cursor.sum = sum_now;
        HistogramDelta {
            buckets,
            count,
            sum,
        }
    }

    /// A consistent-enough point-in-time summary.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let max = self.max.load(Ordering::Relaxed);
        // A percentile can never fall outside the observed range, so clamp
        // the bucket upper bound into [min, max]: a single recorded 0 yields
        // p50 = 0 (not the phantom bucket edge), and a single 5 yields 5.
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_upper(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

/// Reader-side position into a [`Histogram`]: the bucket levels seen at
/// the last [`Histogram::delta_since`] call. One cursor per reader; the
/// histogram itself is never reset.
#[derive(Debug, Clone)]
pub struct HistogramCursor {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl Default for HistogramCursor {
    fn default() -> Self {
        HistogramCursor {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramCursor {
    /// A cursor positioned at zero (the first `delta_since` reads the
    /// full history).
    #[must_use]
    pub fn new() -> Self {
        HistogramCursor::default()
    }
}

/// Observations accumulated over one sampling interval, produced by
/// [`Histogram::delta_since`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDelta {
    /// Per-bucket observation counts for the interval (log₂ buckets,
    /// same layout as the histogram itself).
    pub buckets: [u64; BUCKETS],
    /// Observations in the interval.
    pub count: u64,
    /// Sum of observed values in the interval.
    pub sum: u64,
}

impl HistogramDelta {
    /// An empty delta (useful as a merge identity).
    #[must_use]
    pub fn empty() -> Self {
        HistogramDelta {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Accumulates `other` into `self` (bucket-wise addition), so merged
    /// timelines can recompute interval percentiles across nodes.
    pub fn merge(&mut self, other: &HistogramDelta) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Approximate percentile of the interval's observations, as the
    /// upper bound of the bucket containing the rank (same 2× contract as
    /// [`Histogram::summary`], minus the lifetime min/max clamp).
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper(i);
            }
        }
        Histogram::bucket_upper(BUCKETS - 1)
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Approximate 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile (bucket upper bound).
    pub p90: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// Registry of named instruments.
///
/// Clone the `Arc`-wrapped instruments out of the registry once and record
/// through them on hot paths; `get-or-create` takes the write lock only on
/// first use of a name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    wire: Arc<crate::wirecost::WireAccountant>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// The registry's wire-cost accountant: per-class / per-link / per-
    /// broadcast frame and byte counts (see [`crate::wirecost`]). Engines
    /// feed it at the same sites as their `messages_sent` / `bytes_sent`
    /// counters; returned as an `Arc` so send paths on other threads can
    /// record without holding the registry.
    #[must_use]
    pub fn wire(&self) -> Arc<crate::wirecost::WireAccountant> {
        Arc::clone(&self.wire)
    }

    /// All registered counters, as `(name, instrument)` pairs in name
    /// order. Samplers iterate these to diff against their cursors.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All registered gauges, as `(name, instrument)` pairs in name order.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All registered histograms, as `(name, instrument)` pairs in name
    /// order.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Renders every instrument into a JSON-ready value tree:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: summary}}`.
    #[must_use]
    pub fn snapshot(&self) -> serde::Value {
        let counters: Vec<(String, serde::Value)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), serde::Value::U64(v.get())))
            .collect();
        let gauges: Vec<(String, serde::Value)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| {
                let g = v.get();
                let val = if g >= 0 {
                    serde::Value::U64(g as u64)
                } else {
                    serde::Value::I64(g)
                };
                (k.clone(), val)
            })
            .collect();
        let histograms: Vec<(String, serde::Value)> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| {
                let s = v.summary();
                (
                    k.clone(),
                    serde::Value::Obj(vec![
                        ("count".to_owned(), serde::Value::U64(s.count)),
                        ("sum".to_owned(), serde::Value::U64(s.sum)),
                        ("min".to_owned(), serde::Value::U64(s.min)),
                        ("max".to_owned(), serde::Value::U64(s.max)),
                        ("mean".to_owned(), serde::Value::F64(s.mean)),
                        ("p50".to_owned(), serde::Value::U64(s.p50)),
                        ("p90".to_owned(), serde::Value::U64(s.p90)),
                        ("p99".to_owned(), serde::Value::U64(s.p99)),
                    ]),
                )
            })
            .collect();
        serde::Value::Obj(vec![
            ("counters".to_owned(), serde::Value::Obj(counters)),
            ("gauges".to_owned(), serde::Value::Obj(gauges)),
            ("histograms".to_owned(), serde::Value::Obj(histograms)),
        ])
    }

    /// The snapshot as pretty-printed JSON.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("value trees always render")
    }

    /// Renders every instrument in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as summary-typed quantile series plus `_sum`/`_count`. Metric names
    /// are prefixed with `lhg_` and sanitized to `[a-zA-Z0-9_:]`.
    ///
    /// Each series gets a `# HELP` line (the original, unsanitized name —
    /// the only place it survives sanitization), and `# HELP`/`# TYPE`
    /// headers are emitted once per *sanitized* name: two registry names
    /// that collapse to the same series (`a.b` and `a:b` both sanitize to
    /// `lhg_a_b` for counters) would otherwise emit conflicting TYPE
    /// blocks, which Prometheus rejects at scrape time.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("lhg_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn escape_help(name: &str) -> String {
            name.replace('\\', "\\\\").replace('\n', "\\n")
        }
        let mut out = String::new();
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut header = |out: &mut String, n: &str, name: &str, kind: &str| {
            if seen.insert(n.to_owned()) {
                out.push_str(&format!(
                    "# HELP {n} {}\n# TYPE {n} {kind}\n",
                    escape_help(name)
                ));
            }
        };
        for (name, c) in self.counters.read().iter() {
            let n = sanitize(name);
            header(&mut out, &n, name, "counter");
            out.push_str(&format!("{n} {}\n", c.get()));
        }
        for (name, g) in self.gauges.read().iter() {
            let n = sanitize(name);
            header(&mut out, &n, name, "gauge");
            out.push_str(&format!("{n} {}\n", g.get()));
        }
        for (name, h) in self.histograms.read().iter() {
            let n = sanitize(name);
            let s = h.summary();
            header(&mut out, &n, name, "summary");
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", s.sum, s.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter("msgs").add(3);
        reg.counter("msgs").inc();
        assert_eq!(reg.counter("msgs").get(), 4);
        reg.gauge("links").set(5);
        reg.gauge("links").add(-2);
        assert_eq!(reg.gauge("links").get(), 3);
    }

    #[test]
    fn instruments_are_shared_not_replaced() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn histogram_summary_tracks_distribution() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 221.2).abs() < 1e-9);
        assert!(s.p50 >= 3, "median bucket covers 3, got {}", s.p50);
        assert!(s.p99 >= 1000, "p99 bucket covers max, got {}", s.p99);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::default().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        let s = h.summary();
        assert_eq!((s.min, s.max, s.p50), (0, 0, 0));
        assert_eq!((s.p90, s.p99), (0, 0), "all percentiles of a single 0");
    }

    #[test]
    fn single_value_percentiles_report_the_value() {
        let h = Histogram::default();
        h.record(5);
        let s = h.summary();
        // Bucket upper bound is 7; percentiles must clamp to the observed
        // range rather than report a phantom bucket edge.
        assert_eq!((s.p50, s.p90, s.p99), (5, 5, 5));
        assert_eq!((s.min, s.max), (5, 5));
    }

    #[test]
    fn max_value_saturates_into_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX); // must not index out of bounds
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX, "clamped to observed max");
        assert_eq!(s.sum, u64::MAX.wrapping_mul(2), "sum wraps, by design");
    }

    #[test]
    fn percentiles_stay_within_observed_range() {
        let h = Histogram::default();
        for v in [10u64, 11, 12, 13] {
            h.record(v);
        }
        let s = h.summary();
        for p in [s.p50, s.p90, s.p99] {
            assert!((10..=13).contains(&p), "percentile {p} outside range");
        }
    }

    #[test]
    fn prometheus_text_renders_all_instrument_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("runtime.deliveries").add(7);
        reg.gauge("runtime.open-links").set(-2);
        reg.histogram("runtime.delivery_latency_us").record(100);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE lhg_runtime_deliveries counter\n"));
        assert!(text.contains("lhg_runtime_deliveries 7\n"));
        assert!(text.contains("# TYPE lhg_runtime_open_links gauge\n"));
        assert!(text.contains("lhg_runtime_open_links -2\n"));
        assert!(text.contains("# TYPE lhg_runtime_delivery_latency_us summary\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us{quantile=\"0.5\"} 100\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us_sum 100\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us_count 1\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad exposition line: {line}");
        }
    }

    #[test]
    fn prometheus_text_emits_help_and_dedupes_colliding_types() {
        let reg = MetricsRegistry::new();
        // Both sanitize to `lhg_a_b`; the TYPE/HELP block must appear once.
        reg.counter("a.b").add(1);
        reg.counter("a-b").add(2);
        let text = reg.prometheus_text();
        assert_eq!(
            text.matches("# TYPE lhg_a_b counter\n").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("# HELP lhg_a_b ").count(), 1, "{text}");
        // Both samples still render.
        assert!(text.contains("lhg_a_b 1\n"), "{text}");
        assert!(text.contains("lhg_a_b 2\n"), "{text}");
        // Every series carries a HELP line ahead of its TYPE line.
        let help_pos = text.find("# HELP lhg_a_b").unwrap();
        let type_pos = text.find("# TYPE lhg_a_b").unwrap();
        assert!(help_pos < type_pos, "{text}");
    }

    #[test]
    fn histogram_delta_reads_partition_the_stream() {
        let h = Histogram::default();
        let mut cursor = HistogramCursor::new();
        h.record(10);
        h.record(20);
        let d1 = h.delta_since(&mut cursor);
        assert_eq!((d1.count, d1.sum), (2, 30));
        // Nothing recorded since: the next interval is empty.
        let d2 = h.delta_since(&mut cursor);
        assert_eq!((d2.count, d2.sum), (0, 0));
        h.record(5);
        let d3 = h.delta_since(&mut cursor);
        assert_eq!((d3.count, d3.sum), (1, 5));
        // The histogram itself was never reset: cumulative view intact.
        assert_eq!(h.summary().count, 3);
        assert_eq!(h.summary().sum, 35);
        // A fresh cursor replays the full history.
        let full = h.delta_since(&mut HistogramCursor::new());
        assert_eq!((full.count, full.sum), (3, 35));
    }

    #[test]
    fn histogram_delta_merge_recomputes_percentiles() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1000u64, 2000] {
            b.record(v);
        }
        let mut merged = a.delta_since(&mut HistogramCursor::new());
        merged.merge(&b.delta_since(&mut HistogramCursor::new()));
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 3006);
        assert!(merged.percentile(0.50) >= 3, "median covers 3");
        assert!(merged.percentile(0.99) >= 2000, "p99 covers max");
    }

    #[test]
    fn registry_iteration_lists_all_instruments() {
        let reg = MetricsRegistry::new();
        reg.counter("c1").inc();
        reg.counter("c2").inc();
        reg.gauge("g1").set(4);
        reg.histogram("h1").record(9);
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["c1".to_owned(), "c2".to_owned()]);
        assert_eq!(reg.gauges().len(), 1);
        assert_eq!(reg.histograms().len(), 1);
        // Iteration hands back the live instruments, not copies.
        let (_, c1) = &reg.counters()[0];
        c1.inc();
        assert_eq!(reg.counter("c1").get(), 2);
    }

    #[test]
    fn concurrent_writers_never_tear_snapshots() {
        use std::sync::atomic::AtomicBool;
        let reg = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                let c = reg.counter("w.msgs");
                let h = reg.histogram("w.lat");
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    // Same value from every thread so sum/count stay
                    // provably consistent: sum must equal 7 × count.
                    h.record(7);
                    reg.gauge(&format!("w.g{t}")).set(sent as i64);
                    sent += 1;
                }
                sent
            }));
        }
        // Snapshot repeatedly while the writers hammer the instruments.
        // Mid-flight, count and sum may skew by in-flight writes (they are
        // separate atomics), but no value may ever look *torn*: every
        // observation is exactly 7, so the partial sum is always a
        // multiple of 7 and every order statistic is exactly 7.
        for _ in 0..50 {
            let s = reg.histogram("w.lat").summary();
            assert_eq!(s.sum % 7, 0, "torn histogram sum: {}", s.sum);
            if s.count > 0 {
                assert_eq!((s.min, s.max), (7, 7));
                assert_eq!((s.p50, s.p99), (7, 7));
            }
            // The JSON tree renders without panicking mid-update.
            assert!(serde_json::to_string(&reg.snapshot()).is_ok());
            let _ = reg.prometheus_text();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        // After quiescence every write is visible exactly once.
        assert_eq!(reg.counter("w.msgs").get(), total);
        let s = reg.histogram("w.lat").summary();
        assert_eq!(s.count, total);
        assert_eq!(s.sum, total * 7);
    }

    #[test]
    fn concurrent_delta_reader_loses_nothing() {
        let h = Arc::new(Histogram::default());
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    h.record(3);
                }
            })
        };
        let mut cursor = HistogramCursor::new();
        let mut seen = HistogramDelta::empty();
        while !writer.is_finished() {
            seen.merge(&h.delta_since(&mut cursor));
        }
        writer.join().unwrap();
        seen.merge(&h.delta_since(&mut cursor));
        // Interval reads partition the stream: nothing lost, nothing
        // double-counted, even against a live writer.
        assert_eq!(seen.count, 10_000);
        assert_eq!(seen.sum, 30_000);
    }

    #[test]
    fn snapshot_renders_json() {
        let reg = MetricsRegistry::new();
        reg.counter("sent").add(2);
        reg.gauge("open").set(-1);
        reg.histogram("lat_us").record(42);
        let json = reg.snapshot_json();
        assert!(json.contains("\"sent\": 2"));
        assert!(json.contains("\"open\": -1"));
        assert!(json.contains("\"count\": 1"));
        // Round-trips through the JSON parser.
        assert!(serde_json::from_str::<serde::Value>(&json).is_ok());
    }
}
