//! Lock-light metrics registry shared by the simulators and the TCP
//! runtime.
//!
//! Three instrument kinds cover what the experiments need:
//!
//! * [`Counter`] — monotone event counts (messages sent, bytes on wire,
//!   reconnects);
//! * [`Gauge`] — instantaneous values that move both ways (open
//!   connections, live members);
//! * [`Histogram`] — latency distributions in log₂ buckets (broadcast
//!   delivery time, reconnect time), with approximate percentiles.
//!
//! Instruments are plain atomics behind `Arc`s, so recording never takes a
//! lock; the registry's `parking_lot::RwLock` maps are touched only on
//! first registration and on snapshot. [`MetricsRegistry::snapshot`]
//! renders everything into a [`serde::Value`] tree, which
//! `serde_json::to_string_pretty` turns into the JSON the CLI and the
//! examples print.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// A latency/size distribution in log₂ buckets.
///
/// `record(v)` files `v` under bucket `⌈log₂(v+1)⌉`; percentiles are
/// reported as the upper bound of the bucket containing the rank, which is
/// within 2× of the true value — plenty for the order-of-magnitude
/// comparisons the experiments make.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        // `u64::MAX` has no leading zeros, which would index one past the
        // last bucket — saturate into it instead of panicking.
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i).wrapping_sub(1).max(1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time summary.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let max = self.max.load(Ordering::Relaxed);
        // A percentile can never fall outside the observed range, so clamp
        // the bucket upper bound into [min, max]: a single recorded 0 yields
        // p50 = 0 (not the phantom bucket edge), and a single 5 yields 5.
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_upper(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Approximate 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile (bucket upper bound).
    pub p90: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// Registry of named instruments.
///
/// Clone the `Arc`-wrapped instruments out of the registry once and record
/// through them on hot paths; `get-or-create` takes the write lock only on
/// first use of a name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Renders every instrument into a JSON-ready value tree:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: summary}}`.
    #[must_use]
    pub fn snapshot(&self) -> serde::Value {
        let counters: Vec<(String, serde::Value)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), serde::Value::U64(v.get())))
            .collect();
        let gauges: Vec<(String, serde::Value)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| {
                let g = v.get();
                let val = if g >= 0 {
                    serde::Value::U64(g as u64)
                } else {
                    serde::Value::I64(g)
                };
                (k.clone(), val)
            })
            .collect();
        let histograms: Vec<(String, serde::Value)> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| {
                let s = v.summary();
                (
                    k.clone(),
                    serde::Value::Obj(vec![
                        ("count".to_owned(), serde::Value::U64(s.count)),
                        ("sum".to_owned(), serde::Value::U64(s.sum)),
                        ("min".to_owned(), serde::Value::U64(s.min)),
                        ("max".to_owned(), serde::Value::U64(s.max)),
                        ("mean".to_owned(), serde::Value::F64(s.mean)),
                        ("p50".to_owned(), serde::Value::U64(s.p50)),
                        ("p90".to_owned(), serde::Value::U64(s.p90)),
                        ("p99".to_owned(), serde::Value::U64(s.p99)),
                    ]),
                )
            })
            .collect();
        serde::Value::Obj(vec![
            ("counters".to_owned(), serde::Value::Obj(counters)),
            ("gauges".to_owned(), serde::Value::Obj(gauges)),
            ("histograms".to_owned(), serde::Value::Obj(histograms)),
        ])
    }

    /// The snapshot as pretty-printed JSON.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("value trees always render")
    }

    /// Renders every instrument in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as summary-typed quantile series plus `_sum`/`_count`. Metric names
    /// are prefixed with `lhg_` and sanitized to `[a-zA-Z0-9_:]`.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("lhg_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, c) in self.counters.read().iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.get()));
        }
        for (name, g) in self.gauges.read().iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.get()));
        }
        for (name, h) in self.histograms.read().iter() {
            let n = sanitize(name);
            let s = h.summary();
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", s.sum, s.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter("msgs").add(3);
        reg.counter("msgs").inc();
        assert_eq!(reg.counter("msgs").get(), 4);
        reg.gauge("links").set(5);
        reg.gauge("links").add(-2);
        assert_eq!(reg.gauge("links").get(), 3);
    }

    #[test]
    fn instruments_are_shared_not_replaced() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn histogram_summary_tracks_distribution() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 221.2).abs() < 1e-9);
        assert!(s.p50 >= 3, "median bucket covers 3, got {}", s.p50);
        assert!(s.p99 >= 1000, "p99 bucket covers max, got {}", s.p99);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::default().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        let s = h.summary();
        assert_eq!((s.min, s.max, s.p50), (0, 0, 0));
        assert_eq!((s.p90, s.p99), (0, 0), "all percentiles of a single 0");
    }

    #[test]
    fn single_value_percentiles_report_the_value() {
        let h = Histogram::default();
        h.record(5);
        let s = h.summary();
        // Bucket upper bound is 7; percentiles must clamp to the observed
        // range rather than report a phantom bucket edge.
        assert_eq!((s.p50, s.p90, s.p99), (5, 5, 5));
        assert_eq!((s.min, s.max), (5, 5));
    }

    #[test]
    fn max_value_saturates_into_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX); // must not index out of bounds
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX, "clamped to observed max");
        assert_eq!(s.sum, u64::MAX.wrapping_mul(2), "sum wraps, by design");
    }

    #[test]
    fn percentiles_stay_within_observed_range() {
        let h = Histogram::default();
        for v in [10u64, 11, 12, 13] {
            h.record(v);
        }
        let s = h.summary();
        for p in [s.p50, s.p90, s.p99] {
            assert!((10..=13).contains(&p), "percentile {p} outside range");
        }
    }

    #[test]
    fn prometheus_text_renders_all_instrument_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("runtime.deliveries").add(7);
        reg.gauge("runtime.open-links").set(-2);
        reg.histogram("runtime.delivery_latency_us").record(100);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE lhg_runtime_deliveries counter\n"));
        assert!(text.contains("lhg_runtime_deliveries 7\n"));
        assert!(text.contains("# TYPE lhg_runtime_open_links gauge\n"));
        assert!(text.contains("lhg_runtime_open_links -2\n"));
        assert!(text.contains("# TYPE lhg_runtime_delivery_latency_us summary\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us{quantile=\"0.5\"} 100\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us_sum 100\n"));
        assert!(text.contains("lhg_runtime_delivery_latency_us_count 1\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad exposition line: {line}");
        }
    }

    #[test]
    fn snapshot_renders_json() {
        let reg = MetricsRegistry::new();
        reg.counter("sent").add(2);
        reg.gauge("open").set(-1);
        reg.histogram("lat_us").record(42);
        let json = reg.snapshot_json();
        assert!(json.contains("\"sent\": 2"));
        assert!(json.contains("\"open\": -1"));
        assert!(json.contains("\"count\": 1"));
        // Round-trips through the JSON parser.
        assert!(serde_json::from_str::<serde::Value>(&json).is_ok());
    }
}
