//! Wire messages: a minimal binary format over [`bytes::Bytes`].
//!
//! Layout (big-endian):
//!
//! ```text
//! 8 bytes  broadcast id
//! 4 bytes  origin node id
//! 4 bytes  hop count
//! 4 bytes  payload length L
//! L bytes  payload
//! --- optional trace extension (versioned by its flag byte) ---
//! 1 byte   extension flag (0x01 = trace id follows)
//! 8 bytes  trace id
//! ```
//!
//! The extension block is strictly optional: a frame that ends right after
//! the payload is a **legacy frame** and decodes with `trace = None`, so
//! old and new peers interoperate. The flag byte doubles as a version
//! marker — decoders reject flags they do not understand rather than
//! silently misparse, and future extensions claim new flag values.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Extension flag announcing an 8-byte trace id.
pub const TRACE_EXT_FLAG: u8 = 0x01;

/// Encoded size of the trace extension block (flag + trace id).
pub const TRACE_EXT_LEN: usize = 1 + 8;

/// A broadcast message as it travels the simulated network.
///
/// Cloning is cheap: the payload is a reference-counted [`Bytes`] slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Identifier of the broadcast this message belongs to (for dedup).
    pub broadcast_id: u64,
    /// Node that originated the broadcast.
    pub origin: u32,
    /// Hops travelled so far (incremented on each forward).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
    /// Causal-trace id carried end to end, if the origin enabled tracing.
    /// `None` on legacy frames and untraced control traffic.
    pub trace: Option<u64>,
}

impl Message {
    /// Creates a fresh (0-hop, untraced) broadcast message.
    #[must_use]
    pub fn new(broadcast_id: u64, origin: u32, payload: Bytes) -> Self {
        Message {
            broadcast_id,
            origin,
            hops: 0,
            payload,
            trace: None,
        }
    }

    /// The same message carrying `trace_id` in its trace extension.
    #[must_use]
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }

    /// A copy with the hop count incremented (what a forwarder sends).
    /// The trace id, if any, rides along unchanged.
    #[must_use]
    pub fn forwarded(&self) -> Self {
        Message {
            hops: self.hops + 1,
            ..self.clone()
        }
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        8 + 4
            + 4
            + 4
            + self.payload.len()
            + if self.trace.is_some() {
                TRACE_EXT_LEN
            } else {
                0
            }
    }

    /// Encodes to the wire format. Untraced messages produce byte-identical
    /// legacy frames; traced ones append the extension block.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64(self.broadcast_id);
        buf.put_u32(self.origin);
        buf.put_u32(self.hops);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        if let Some(trace_id) = self.trace {
            buf.put_u8(TRACE_EXT_FLAG);
            buf.put_u64(trace_id);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    ///
    /// Returns `None` on truncated input, unknown extension flags, or
    /// trailing garbage. A frame ending right after the payload decodes as
    /// legacy (`trace = None`).
    #[must_use]
    pub fn decode(mut raw: Bytes) -> Option<Self> {
        if raw.len() < 20 {
            return None;
        }
        let broadcast_id = raw.get_u64();
        let origin = raw.get_u32();
        let hops = raw.get_u32();
        let len = raw.get_u32() as usize;
        if raw.len() < len {
            return None;
        }
        let payload = raw.slice(0..len);
        let mut ext = raw.slice(len..raw.len());
        let trace = match ext.len() {
            0 => None,
            TRACE_EXT_LEN if ext[0] == TRACE_EXT_FLAG => {
                ext.get_u8();
                Some(ext.get_u64())
            }
            _ => return None,
        };
        Some(Message {
            broadcast_id,
            origin,
            hops,
            payload,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Message::new(42, 7, Bytes::from_static(b"hello overlay"));
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_payload_round_trips() {
        let m = Message::new(1, 0, Bytes::new());
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn traced_round_trip() {
        let m = Message::new(42, 7, Bytes::from_static(b"traced")).with_trace(0xDEAD_BEEF);
        assert_eq!(m.trace, Some(0xDEAD_BEEF));
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.trace, Some(0xDEAD_BEEF));
    }

    #[test]
    fn legacy_frames_decode_without_trace() {
        // A hand-built frame with no extension block must decode as legacy.
        let traced = Message::new(9, 1, Bytes::from_static(b"pay")).with_trace(5);
        let enc = traced.encode();
        let legacy = enc.slice(0..enc.len() - TRACE_EXT_LEN);
        let decoded = Message::decode(legacy).unwrap();
        assert_eq!(decoded.trace, None);
        assert_eq!(decoded.payload, traced.payload);
        assert_eq!(decoded.broadcast_id, 9);
    }

    #[test]
    fn unknown_extension_flag_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(0x7E); // not TRACE_EXT_FLAG
        enc.put_u64(123);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn forwarded_increments_hops_only() {
        let m = Message::new(9, 3, Bytes::from_static(b"x")).with_trace(77);
        let f = m.forwarded();
        assert_eq!(f.hops, 1);
        assert_eq!(f.forwarded().hops, 2);
        assert_eq!(f.broadcast_id, 9);
        assert_eq!(f.origin, 3);
        assert_eq!(f.payload, m.payload);
        assert_eq!(f.trace, Some(77), "trace id rides along on forwards");
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(Message::decode(Bytes::from_static(b"short")), None);
        let m = Message::new(1, 2, Bytes::from_static(b"abcdef"));
        let enc = m.encode();
        assert_eq!(Message::decode(enc.slice(0..enc.len() - 1)), None);
        let t = m.with_trace(1);
        let enc = t.encode();
        assert_eq!(
            Message::decode(enc.slice(0..enc.len() - 1)),
            None,
            "truncated extension block"
        );
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(0xFF);
        assert_eq!(Message::decode(enc.freeze()), None);
        let t = Message::new(1, 2, Bytes::from_static(b"abc")).with_trace(4);
        let mut enc = BytesMut::from(&t.encode()[..]);
        enc.put_u8(0xFF);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn encoded_len_matches() {
        let m = Message::new(5, 1, Bytes::from_static(b"12345"));
        assert_eq!(m.encode().len(), m.encoded_len());
        let t = m.with_trace(9);
        assert_eq!(t.encode().len(), t.encoded_len());
        assert_eq!(t.encoded_len(), 20 + 5 + TRACE_EXT_LEN);
    }
}
