//! Wire messages: a minimal binary format over [`bytes::Bytes`].
//!
//! Layout (big-endian):
//!
//! ```text
//! 8 bytes  broadcast id
//! 4 bytes  origin node id
//! 4 bytes  hop count
//! 4 bytes  payload length L
//! L bytes  payload
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A broadcast message as it travels the simulated network.
///
/// Cloning is cheap: the payload is a reference-counted [`Bytes`] slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Identifier of the broadcast this message belongs to (for dedup).
    pub broadcast_id: u64,
    /// Node that originated the broadcast.
    pub origin: u32,
    /// Hops travelled so far (incremented on each forward).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
}

impl Message {
    /// Creates a fresh (0-hop) broadcast message.
    #[must_use]
    pub fn new(broadcast_id: u64, origin: u32, payload: Bytes) -> Self {
        Message {
            broadcast_id,
            origin,
            hops: 0,
            payload,
        }
    }

    /// A copy with the hop count incremented (what a forwarder sends).
    #[must_use]
    pub fn forwarded(&self) -> Self {
        Message {
            hops: self.hops + 1,
            ..self.clone()
        }
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        8 + 4 + 4 + 4 + self.payload.len()
    }

    /// Encodes to the wire format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64(self.broadcast_id);
        buf.put_u32(self.origin);
        buf.put_u32(self.hops);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes from the wire format.
    ///
    /// Returns `None` on truncated or over-long input.
    #[must_use]
    pub fn decode(mut raw: Bytes) -> Option<Self> {
        if raw.len() < 20 {
            return None;
        }
        let broadcast_id = raw.get_u64();
        let origin = raw.get_u32();
        let hops = raw.get_u32();
        let len = raw.get_u32() as usize;
        if raw.len() != len {
            return None;
        }
        Some(Message {
            broadcast_id,
            origin,
            hops,
            payload: raw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Message::new(42, 7, Bytes::from_static(b"hello overlay"));
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_payload_round_trips() {
        let m = Message::new(1, 0, Bytes::new());
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn forwarded_increments_hops_only() {
        let m = Message::new(9, 3, Bytes::from_static(b"x"));
        let f = m.forwarded();
        assert_eq!(f.hops, 1);
        assert_eq!(f.forwarded().hops, 2);
        assert_eq!(f.broadcast_id, 9);
        assert_eq!(f.origin, 3);
        assert_eq!(f.payload, m.payload);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(Message::decode(Bytes::from_static(b"short")), None);
        let m = Message::new(1, 2, Bytes::from_static(b"abcdef"));
        let enc = m.encode();
        assert_eq!(Message::decode(enc.slice(0..enc.len() - 1)), None);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = bytes::BytesMut::from(&m.encode()[..]);
        enc.put_u8(0xFF);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn encoded_len_matches() {
        let m = Message::new(5, 1, Bytes::from_static(b"12345"));
        assert_eq!(m.encode().len(), m.encoded_len());
    }
}
