//! Wire messages: a minimal binary format over [`bytes::Bytes`].
//!
//! Layout (big-endian):
//!
//! ```text
//! 8 bytes  broadcast id
//! 4 bytes  origin node id
//! 4 bytes  hop count
//! 4 bytes  payload length L
//! L bytes  payload
//! --- optional extension block (versioned by its flag byte) ---
//! 1 byte   extension flags (bitmask: 0x01 = trace id, 0x02 = link seq,
//!                           0x04 = byzantine witness tag)
//! 8 bytes  trace id        (present iff flag bit 0x01 set)
//! 8 bytes  link sequence   (present iff flag bit 0x02 set)
//! 12 bytes byz tag         (present iff flag bit 0x04 set:
//!                           4-byte claimed origin + 8-byte instance nonce)
//! ```
//!
//! The extension block is strictly optional: a frame that ends right after
//! the payload is a **legacy frame** and decodes with `trace = None` and
//! `link_seq = None`, so old and new peers interoperate. The flag byte is a
//! bitmask of known extensions in a fixed field order — decoders reject
//! flag bits they do not understand rather than silently misparse, and
//! future extensions claim new bits. A trace-only frame is byte-identical
//! to the pre-link-seq format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Extension flag bit announcing an 8-byte trace id.
pub const TRACE_EXT_FLAG: u8 = 0x01;

/// Extension flag bit announcing an 8-byte per-link sequence number
/// (see [`crate::reliable`]).
pub const SEQ_EXT_FLAG: u8 = 0x02;

/// Extension flag bit announcing a 12-byte Byzantine witness tag
/// (claimed origin + instance nonce) naming the broadcast *instance* a
/// Bracha echo/ready frame vouches for. "Signed-enough" identity: correct
/// nodes never emit a tag for an instance they did not witness, so quorum
/// counting over distinct witnesses is sound up to the traitor budget.
pub const BYZ_EXT_FLAG: u8 = 0x04;

/// All extension flag bits this decoder understands.
pub const KNOWN_EXT_FLAGS: u8 = TRACE_EXT_FLAG | SEQ_EXT_FLAG | BYZ_EXT_FLAG;

/// Encoded size of the trace extension block (flag + trace id).
pub const TRACE_EXT_LEN: usize = 1 + 8;

/// Encoded size of the byz tag payload within the extension block
/// (4-byte origin + 8-byte nonce; the shared flag byte is not counted).
pub const BYZ_TAG_LEN: usize = 4 + 8;

/// The broadcast-instance identity carried by the byz extension: the
/// claimed origin plus a per-origin nonce. One `(origin, nonce)` pair
/// names one Byzantine broadcast instance end to end; every echo/ready
/// frame vouching for that instance carries the same tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByzTag {
    /// Member id of the claimed broadcast origin.
    pub origin: u32,
    /// Per-origin nonce distinguishing broadcast instances.
    pub nonce: u64,
}

/// A broadcast message as it travels the simulated network.
///
/// Cloning is cheap: the payload is a reference-counted [`Bytes`] slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Identifier of the broadcast this message belongs to (for dedup).
    pub broadcast_id: u64,
    /// Node that originated the broadcast.
    pub origin: u32,
    /// Hops travelled so far (incremented on each forward).
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
    /// Causal-trace id carried end to end, if the origin enabled tracing.
    /// `None` on legacy frames and untraced control traffic.
    pub trace: Option<u64>,
    /// Per-link sequence number stamped by the reliable layer at send
    /// time (see [`crate::reliable`]). Unlike `trace`, this is hop-local:
    /// it is assigned per (sender, receiver) link and stripped on forward.
    /// `None` on legacy frames and best-effort traffic.
    pub link_seq: Option<u64>,
    /// Byzantine witness tag naming the broadcast instance this frame
    /// vouches for. Like `trace` it rides along end to end on forwards.
    /// `None` on legacy frames and non-Byzantine traffic.
    pub byz: Option<ByzTag>,
}

impl Message {
    /// Creates a fresh (0-hop, untraced) broadcast message.
    #[must_use]
    pub fn new(broadcast_id: u64, origin: u32, payload: Bytes) -> Self {
        Message {
            broadcast_id,
            origin,
            hops: 0,
            payload,
            trace: None,
            link_seq: None,
            byz: None,
        }
    }

    /// The same message carrying `trace_id` in its trace extension.
    #[must_use]
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }

    /// The same message stamped with a per-link sequence number.
    #[must_use]
    pub fn with_link_seq(mut self, seq: u64) -> Self {
        self.link_seq = Some(seq);
        self
    }

    /// The same message carrying a Byzantine witness tag.
    #[must_use]
    pub fn with_byz(mut self, tag: ByzTag) -> Self {
        self.byz = Some(tag);
        self
    }

    /// A copy with the hop count incremented (what a forwarder sends).
    /// The trace id and byz tag, if any, ride along unchanged; the link
    /// sequence is stripped because it only ever names the hop it arrived
    /// on.
    #[must_use]
    pub fn forwarded(&self) -> Self {
        Message {
            hops: self.hops + 1,
            link_seq: None,
            ..self.clone()
        }
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let mut ext = 0;
        if self.trace.is_some() {
            ext += 8;
        }
        if self.link_seq.is_some() {
            ext += 8;
        }
        if self.byz.is_some() {
            ext += BYZ_TAG_LEN;
        }
        if ext != 0 {
            ext += 1; // the flag byte
        }
        8 + 4 + 4 + 4 + self.payload.len() + ext
    }

    /// Encodes to the wire format. Messages with no extensions produce
    /// byte-identical legacy frames; trace-only messages produce frames
    /// identical to the pre-link-seq format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64(self.broadcast_id);
        buf.put_u32(self.origin);
        buf.put_u32(self.hops);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        let mut flags = 0u8;
        if self.trace.is_some() {
            flags |= TRACE_EXT_FLAG;
        }
        if self.link_seq.is_some() {
            flags |= SEQ_EXT_FLAG;
        }
        if self.byz.is_some() {
            flags |= BYZ_EXT_FLAG;
        }
        if flags != 0 {
            buf.put_u8(flags);
            if let Some(trace_id) = self.trace {
                buf.put_u64(trace_id);
            }
            if let Some(seq) = self.link_seq {
                buf.put_u64(seq);
            }
            if let Some(tag) = self.byz {
                buf.put_u32(tag.origin);
                buf.put_u64(tag.nonce);
            }
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    ///
    /// Returns `None` on truncated input, unknown extension flag bits, or
    /// trailing garbage. A frame ending right after the payload decodes as
    /// legacy (`trace = None`, `link_seq = None`).
    #[must_use]
    pub fn decode(mut raw: Bytes) -> Option<Self> {
        if raw.len() < 20 {
            return None;
        }
        let broadcast_id = raw.get_u64();
        let origin = raw.get_u32();
        let hops = raw.get_u32();
        let len = raw.get_u32() as usize;
        if raw.len() < len {
            return None;
        }
        let payload = raw.slice(0..len);
        let mut ext = raw.slice(len..raw.len());
        let (trace, link_seq, byz) = if ext.is_empty() {
            (None, None, None)
        } else {
            let flags = ext.get_u8();
            if flags == 0 || flags & !KNOWN_EXT_FLAGS != 0 {
                return None;
            }
            let want = 8 * usize::from(flags & TRACE_EXT_FLAG != 0)
                + 8 * usize::from(flags & SEQ_EXT_FLAG != 0)
                + BYZ_TAG_LEN * usize::from(flags & BYZ_EXT_FLAG != 0);
            if ext.len() != want {
                return None;
            }
            let trace = (flags & TRACE_EXT_FLAG != 0).then(|| ext.get_u64());
            let link_seq = (flags & SEQ_EXT_FLAG != 0).then(|| ext.get_u64());
            let byz = (flags & BYZ_EXT_FLAG != 0).then(|| ByzTag {
                origin: ext.get_u32(),
                nonce: ext.get_u64(),
            });
            (trace, link_seq, byz)
        };
        Some(Message {
            broadcast_id,
            origin,
            hops,
            payload,
            trace,
            link_seq,
            byz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Message::new(42, 7, Bytes::from_static(b"hello overlay"));
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn empty_payload_round_trips() {
        let m = Message::new(1, 0, Bytes::new());
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn traced_round_trip() {
        let m = Message::new(42, 7, Bytes::from_static(b"traced")).with_trace(0xDEAD_BEEF);
        assert_eq!(m.trace, Some(0xDEAD_BEEF));
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.trace, Some(0xDEAD_BEEF));
    }

    #[test]
    fn link_seq_round_trip() {
        let m = Message::new(3, 1, Bytes::from_static(b"seq")).with_link_seq(17);
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.link_seq, Some(17));
        assert_eq!(decoded.trace, None);
    }

    #[test]
    fn trace_and_link_seq_round_trip() {
        let m = Message::new(3, 1, Bytes::from_static(b"both"))
            .with_trace(0xAA)
            .with_link_seq(u64::MAX);
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded.trace, Some(0xAA));
        assert_eq!(decoded.link_seq, Some(u64::MAX));
    }

    #[test]
    fn trace_only_encoding_matches_pre_link_seq_format() {
        // The old format was: flag byte 0x01 followed by the trace id.
        // Trace-only frames must stay byte-identical so old peers decode.
        let m = Message::new(9, 2, Bytes::from_static(b"pay")).with_trace(0x0102_0304);
        let enc = m.encode();
        let ext = &enc[enc.len() - TRACE_EXT_LEN..];
        assert_eq!(ext[0], TRACE_EXT_FLAG);
        assert_eq!(&ext[1..], 0x0102_0304u64.to_be_bytes());
    }

    #[test]
    fn byz_tag_round_trips() {
        let tag = ByzTag {
            origin: 7,
            nonce: 0x0102_0304_0506,
        };
        let m = Message::new(3, 7, Bytes::from_static(b"byz")).with_byz(tag);
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.byz, Some(tag));
        assert_eq!(decoded.trace, None);
        assert_eq!(decoded.link_seq, None);
    }

    #[test]
    fn all_three_extensions_round_trip() {
        let tag = ByzTag {
            origin: u32::MAX,
            nonce: u64::MAX,
        };
        let m = Message::new(3, 1, Bytes::from_static(b"full"))
            .with_trace(0xAA)
            .with_link_seq(17)
            .with_byz(tag);
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded.trace, Some(0xAA));
        assert_eq!(decoded.link_seq, Some(17));
        assert_eq!(decoded.byz, Some(tag));
    }

    #[test]
    fn forwarded_keeps_byz_tag() {
        let tag = ByzTag {
            origin: 2,
            nonce: 9,
        };
        let m = Message::new(9, 3, Bytes::from_static(b"x"))
            .with_byz(tag)
            .with_link_seq(5);
        let f = m.forwarded();
        assert_eq!(f.byz, Some(tag), "byz tags ride along on forwards");
        assert_eq!(f.link_seq, None);
    }

    #[test]
    fn byz_extension_with_wrong_length_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(BYZ_EXT_FLAG);
        enc.put_u32(7); // origin but no nonce: 4 of the 12 tag bytes
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn forwarded_strips_link_seq() {
        let m = Message::new(9, 3, Bytes::from_static(b"x"))
            .with_trace(77)
            .with_link_seq(5);
        let f = m.forwarded();
        assert_eq!(f.link_seq, None, "link seqs are hop-local");
        assert_eq!(f.trace, Some(77));
    }

    #[test]
    fn zero_flag_byte_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(0x00);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn legacy_frames_decode_without_trace() {
        // A hand-built frame with no extension block must decode as legacy.
        let traced = Message::new(9, 1, Bytes::from_static(b"pay")).with_trace(5);
        let enc = traced.encode();
        let legacy = enc.slice(0..enc.len() - TRACE_EXT_LEN);
        let decoded = Message::decode(legacy).unwrap();
        assert_eq!(decoded.trace, None);
        assert_eq!(decoded.payload, traced.payload);
        assert_eq!(decoded.broadcast_id, 9);
    }

    #[test]
    fn unknown_extension_flag_is_rejected() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(0x7E); // not TRACE_EXT_FLAG
        enc.put_u64(123);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn forwarded_increments_hops_only() {
        let m = Message::new(9, 3, Bytes::from_static(b"x")).with_trace(77);
        let f = m.forwarded();
        assert_eq!(f.hops, 1);
        assert_eq!(f.forwarded().hops, 2);
        assert_eq!(f.broadcast_id, 9);
        assert_eq!(f.origin, 3);
        assert_eq!(f.payload, m.payload);
        assert_eq!(f.trace, Some(77), "trace id rides along on forwards");
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(Message::decode(Bytes::from_static(b"short")), None);
        let m = Message::new(1, 2, Bytes::from_static(b"abcdef"));
        let enc = m.encode();
        assert_eq!(Message::decode(enc.slice(0..enc.len() - 1)), None);
        let t = m.with_trace(1);
        let enc = t.encode();
        assert_eq!(
            Message::decode(enc.slice(0..enc.len() - 1)),
            None,
            "truncated extension block"
        );
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let m = Message::new(1, 2, Bytes::from_static(b"abc"));
        let mut enc = BytesMut::from(&m.encode()[..]);
        enc.put_u8(0xFF);
        assert_eq!(Message::decode(enc.freeze()), None);
        let t = Message::new(1, 2, Bytes::from_static(b"abc")).with_trace(4);
        let mut enc = BytesMut::from(&t.encode()[..]);
        enc.put_u8(0xFF);
        assert_eq!(Message::decode(enc.freeze()), None);
    }

    #[test]
    fn encoded_len_matches() {
        let m = Message::new(5, 1, Bytes::from_static(b"12345"));
        assert_eq!(m.encode().len(), m.encoded_len());
        let t = m.with_trace(9);
        assert_eq!(t.encode().len(), t.encoded_len());
        assert_eq!(t.encoded_len(), 20 + 5 + TRACE_EXT_LEN);
    }
}
