//! Capacity-capped dedup set for flooding broadcast ids.
//!
//! Every flooding layer in the workspace keeps a "seen broadcast ids" set
//! to deliver-and-forward exactly once. An unbounded [`std::collections::HashSet`]
//! grows forever on long-lived nodes, so [`SeenSet`] bounds it with FIFO
//! eviction: the set remembers the most recent `cap` ids (its *retention
//! window*) and forgets the oldest beyond that.
//!
//! The safety argument for eviction is the same one the reliable layer's
//! anti-entropy store makes: a broadcast id only needs to be remembered
//! while copies of that broadcast can still be in flight. Once the flood
//! has quiesced — bounded by the network diameter times the per-hop
//! latency, plus retransmit budgets — a re-arrival can only be a replay,
//! and `cap` is chosen orders of magnitude above the number of broadcasts
//! in flight during that window. Within the retention window a re-seen id
//! is always suppressed, so no double delivery occurs (see the tests).

use std::collections::{HashSet, VecDeque};

/// Default retention window for long-lived runtimes: large enough that a
/// week-long run at thousands of broadcasts per second still retains every
/// id that could plausibly be in flight, small enough to bound memory
/// (~tens of MB at 8 bytes + set overhead per id).
pub const DEFAULT_SEEN_CAP: usize = 1 << 20;

/// A set of recently-seen broadcast ids with FIFO eviction at `cap`.
#[derive(Debug, Clone)]
pub struct SeenSet {
    cap: usize,
    set: HashSet<u64>,
    order: VecDeque<u64>,
}

impl SeenSet {
    /// Creates a set retaining at most `cap` ids (at least 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SeenSet {
            cap,
            set: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Inserts `id`; returns `true` iff it was *not* already present —
    /// i.e. the caller should deliver and forward. At capacity the oldest
    /// remembered id is evicted first.
    pub fn insert(&mut self, id: u64) -> bool {
        if self.set.contains(&id) {
            return false;
        }
        if self.set.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(id);
        self.order.push_back(id);
        true
    }

    /// Whether `id` is within the retention window.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.set.contains(&id)
    }

    /// Number of ids currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The configured retention capacity.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl Default for SeenSet {
    fn default() -> Self {
        SeenSet::new(DEFAULT_SEEN_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_insert_is_fresh_second_is_not() {
        let mut s = SeenSet::new(8);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_is_fifo_at_capacity() {
        let mut s = SeenSet::new(2);
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(s.insert(3), "3 is fresh; evicts 1");
        assert!(!s.contains(1), "oldest id evicted");
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert_eq!(s.len(), 2, "capacity bound holds");
    }

    #[test]
    fn reseen_id_within_retention_window_is_suppressed() {
        // The eviction edge: ids still inside the window must keep deduping
        // even while older ids fall out — a replayed copy of a *recent*
        // broadcast never double-delivers.
        let mut s = SeenSet::new(4);
        for id in 0..10 {
            assert!(s.insert(id));
            // The most recent `cap` ids are all still suppressed.
            for recent in id.saturating_sub(3)..=id {
                assert!(!s.insert(recent), "id {recent} is within the window");
            }
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn evicted_id_reads_as_fresh_again() {
        // Beyond the retention window the set has forgotten the id — the
        // caller relies on the flood having quiesced by then.
        let mut s = SeenSet::new(2);
        s.insert(1);
        s.insert(2);
        s.insert(3);
        assert!(s.insert(1), "1 fell out of the window");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut s = SeenSet::new(0);
        assert_eq!(s.cap(), 1);
        assert!(s.insert(7));
        assert!(!s.insert(7), "still dedups the single retained id");
        assert!(s.insert(8));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_insert_does_not_advance_eviction() {
        let mut s = SeenSet::new(2);
        s.insert(1);
        s.insert(2);
        for _ in 0..5 {
            assert!(!s.insert(1), "re-inserts are pure no-ops");
        }
        assert!(s.contains(1));
        assert!(s.contains(2));
        assert_eq!(s.len(), 2);
    }
}
