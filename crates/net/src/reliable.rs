//! Per-link reliable delivery: sequence numbers, cumulative acks with
//! selective NACKs, bounded retransmit buffers, and sender backpressure.
//!
//! Flooding over a k-connected LHG overlay survives crashes, but a single
//! dropped frame on an otherwise healthy link silently loses a broadcast
//! copy — and if every copy addressed to some node is dropped, the
//! broadcast is lost there forever. This module makes each directed link
//! reliable so that flooding's delivery guarantee extends to lossy links:
//!
//! * **[`LinkSender`]** stamps every outgoing frame with a per-link
//!   sequence number (carried in the message's link-seq extension, see
//!   [`crate::message`]), keeps a bounded window of unacknowledged frames,
//!   retransmits on timeout, and queues overflow traffic (backpressure)
//!   until acks open the window. Frames that exhaust their retries are
//!   dropped from the buffer — anti-entropy repairs the residue.
//! * **[`LinkReceiver`]** tracks the cumulative ack point and the set of
//!   out-of-order sequences above it, detects link-level duplicates
//!   (retransmitted copies whose ack was lost), and produces `(cum, nacks)`
//!   ack payloads that name the holes so the sender can retransmit them
//!   immediately instead of waiting out the timeout.
//! * **Anti-entropy codecs** ([`encode_summary_payload`]) serialize
//!   summaries of recently-seen broadcast ids; peers diff a summary against
//!   their own dedup set and pull whatever they are missing, so a
//!   broadcast lost on *every* copy is still repaired through any
//!   surviving path.
//! * **[`ReliableFlooder`]** plugs the whole stack into the discrete-event
//!   simulator: flooding + per-link reliability + periodic anti-entropy,
//!   the same protocol the TCP runtime speaks.
//!
//! The layer is engine-agnostic: time is a caller-supplied `u64` of
//! microseconds (virtual in the simulator, a monotonic-epoch offset in the
//! runtime), and all state transitions are deterministic in call order.
//!
//! Interaction with dedup: link sequences are hop-local and say nothing
//! about broadcast identity. Application-level exactly-once still comes
//! from the flooding dedup set; this layer only guarantees that frames put
//! on a link eventually cross it (or are declared dead after bounded
//! retries). A retransmitted copy whose original made it through is
//! absorbed twice: once here (link-level duplicate) and, if it ever slips
//! past (e.g. after a link reset), again by the dedup set.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lhg_graph::NodeId;

use crate::message::Message;
use crate::seen::SeenSet;
use crate::sim::{Context, Process};

/// Broadcast id of link-level ack frames (cumulative ack + NACK list in
/// the payload). Exact value — engines that multiplex per-member control
/// ids OR member bits into the low bits instead.
pub const ACK_TAG: u64 = 1 << 62;

/// Broadcast id of anti-entropy summary frames (advertisement or pull,
/// distinguished by the payload's mode byte).
pub const SUMMARY_TAG: u64 = 1 << 63;

/// Tuning knobs for the reliable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged frames in flight per link; further sends
    /// queue sender-side (backpressure).
    pub window: usize,
    /// Retransmit a frame when it has been unacknowledged this long.
    pub rto_us: u64,
    /// Give up on a frame after this many retransmissions (anti-entropy
    /// repairs what per-link retries could not).
    pub max_retries: u32,
    /// Backpressure queue bound; beyond it the oldest queued frame is
    /// dropped (the link is effectively dead and suspicion will reap it).
    pub queue_cap: usize,
    /// Reliability tick period for [`ReliableFlooder`]: retransmit sweeps
    /// and ack emission run on this cadence.
    pub tick_us: u64,
    /// Send an anti-entropy summary every this many ticks.
    pub summary_every: u64,
    /// How many recently-seen broadcasts are retained for summaries and
    /// pull serving.
    pub store_cap: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            window: 64,
            rto_us: 30_000,
            max_retries: 12,
            queue_cap: 1024,
            tick_us: 10_000,
            summary_every: 5,
            store_cap: 128,
        }
    }
}

/// One unacknowledged frame in the retransmit buffer.
#[derive(Debug, Clone)]
struct InFlight {
    msg: Message,
    last_tx_us: u64,
    retries: u32,
}

/// Sender half of one directed reliable link.
#[derive(Debug, Default)]
pub struct LinkSender {
    next_seq: u64,
    unacked: BTreeMap<u64, InFlight>,
    queued: VecDeque<Message>,
    /// Frames dropped after exhausting retries or overflowing the queue.
    given_up: u64,
}

impl LinkSender {
    /// Creates an idle sender (sequence space starts at 1).
    #[must_use]
    pub fn new() -> Self {
        LinkSender::default()
    }

    /// Frames currently awaiting an ack.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Frames parked by backpressure.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queued.len()
    }

    /// Frames abandoned after exhausting retries or queue overflow.
    #[must_use]
    pub fn given_up(&self) -> u64 {
        self.given_up
    }

    /// Accepts `msg` for reliable transmission. Returns the stamped frame
    /// to put on the wire now, or `None` if the window is full and the
    /// frame was queued (it will surface from a later [`LinkSender::on_ack`]
    /// or [`LinkSender::sweep`] once the window opens).
    pub fn send(&mut self, msg: Message, cfg: &ReliableConfig, now_us: u64) -> Option<Message> {
        if self.unacked.len() < cfg.window {
            Some(self.stamp(msg, now_us))
        } else {
            if self.queued.len() >= cfg.queue_cap {
                self.queued.pop_front();
                self.given_up += 1;
            }
            self.queued.push_back(msg);
            None
        }
    }

    fn stamp(&mut self, msg: Message, now_us: u64) -> Message {
        self.next_seq += 1;
        let stamped = msg.with_link_seq(self.next_seq);
        self.unacked.insert(
            self.next_seq,
            InFlight {
                msg: stamped.clone(),
                last_tx_us: now_us,
                retries: 0,
            },
        );
        stamped
    }

    /// Processes a cumulative ack + NACK list from the peer. Returns the
    /// frames to put on the wire now: immediate retransmissions of every
    /// NACKed hole plus any queued frames the newly-opened window admits.
    pub fn on_ack(
        &mut self,
        cum: u64,
        nacks: &[u64],
        cfg: &ReliableConfig,
        now_us: u64,
    ) -> Vec<Message> {
        let acked: Vec<u64> = self.unacked.range(..=cum).map(|(&s, _)| s).collect();
        for s in acked {
            self.unacked.remove(&s);
        }
        let mut out = Vec::new();
        for &s in nacks {
            if let Some(f) = self.unacked.get_mut(&s) {
                f.retries += 1;
                f.last_tx_us = now_us;
                out.push(f.msg.clone());
            }
        }
        self.drain(cfg, now_us, &mut out);
        out
    }

    /// Retransmit sweep: returns every frame whose retransmit timeout has
    /// expired (giving up on frames past the retry budget), plus queued
    /// frames admitted by the space those give-ups freed.
    pub fn sweep(&mut self, cfg: &ReliableConfig, now_us: u64) -> Vec<Message> {
        let due: Vec<u64> = self
            .unacked
            .iter()
            .filter(|(_, f)| now_us.saturating_sub(f.last_tx_us) >= cfg.rto_us)
            .map(|(&s, _)| s)
            .collect();
        let mut out = Vec::new();
        for s in due {
            let f = self.unacked.get_mut(&s).expect("seq collected above");
            if f.retries >= cfg.max_retries {
                self.unacked.remove(&s);
                self.given_up += 1;
            } else {
                f.retries += 1;
                f.last_tx_us = now_us;
                out.push(f.msg.clone());
            }
        }
        self.drain(cfg, now_us, &mut out);
        out
    }

    fn drain(&mut self, cfg: &ReliableConfig, now_us: u64, out: &mut Vec<Message>) {
        while self.unacked.len() < cfg.window {
            let Some(msg) = self.queued.pop_front() else {
                break;
            };
            out.push(self.stamp(msg, now_us));
        }
    }

    /// Tears the link down, handing back every undelivered message
    /// (unacked then queued, in sequence order) with link stamps removed —
    /// what a reconnecting caller re-sends over the replacement link.
    pub fn take_undelivered(&mut self) -> Vec<Message> {
        let mut out: Vec<Message> = self
            .unacked
            .values()
            .map(|f| {
                let mut m = f.msg.clone();
                m.link_seq = None;
                m
            })
            .collect();
        out.extend(self.queued.iter().cloned());
        *self = LinkSender::new();
        out
    }
}

/// How many holes one ack frame names at most.
pub const MAX_NACKS: usize = 32;

/// Receiver half of one directed reliable link.
#[derive(Debug, Default)]
pub struct LinkReceiver {
    /// Every sequence `<= cum` has been received.
    cum: u64,
    /// Received sequences above `cum` (out of order).
    above: BTreeSet<u64>,
    /// A frame arrived since the last ack was produced.
    dirty: bool,
}

impl LinkReceiver {
    /// Creates a receiver expecting sequence 1 first.
    #[must_use]
    pub fn new() -> Self {
        LinkReceiver::default()
    }

    /// Records the arrival of `seq`. Returns `true` when the frame is new
    /// on this link, `false` for a link-level duplicate (a retransmission
    /// whose original already arrived — the caller should drop it but an
    /// ack is still owed, which is why this marks the receiver dirty
    /// either way).
    pub fn on_frame(&mut self, seq: u64) -> bool {
        self.dirty = true;
        if seq <= self.cum || self.above.contains(&seq) {
            return false;
        }
        if seq == self.cum + 1 {
            self.cum = seq;
            while self.above.remove(&(self.cum + 1)) {
                self.cum += 1;
            }
        } else {
            self.above.insert(seq);
        }
        true
    }

    /// `true` when an ack is owed to the peer.
    #[must_use]
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// The cumulative ack point.
    #[must_use]
    pub fn cum(&self) -> u64 {
        self.cum
    }

    /// Produces the `(cum, nacks)` payload for an ack frame and clears the
    /// dirty flag. NACKs name the first [`MAX_NACKS`] holes between the
    /// cumulative point and the highest sequence seen.
    pub fn ack_payload(&mut self) -> (u64, Vec<u64>) {
        self.dirty = false;
        let mut nacks = Vec::new();
        if let Some(&max) = self.above.iter().next_back() {
            let mut expect = self.cum + 1;
            for &got in &self.above {
                while expect < got && nacks.len() < MAX_NACKS {
                    nacks.push(expect);
                    expect += 1;
                }
                expect = got + 1;
                if nacks.len() >= MAX_NACKS {
                    break;
                }
            }
            debug_assert!(expect > max || nacks.len() >= MAX_NACKS);
        }
        (self.cum, nacks)
    }
}

/// Encodes an ack frame payload: cumulative ack + selective NACK list.
#[must_use]
pub fn encode_ack_payload(cum: u64, nacks: &[u64]) -> Bytes {
    let nacks = &nacks[..nacks.len().min(MAX_NACKS)];
    let mut buf = BytesMut::with_capacity(8 + 4 + 8 * nacks.len());
    buf.put_u64(cum);
    buf.put_u32(nacks.len() as u32);
    for &s in nacks {
        buf.put_u64(s);
    }
    buf.freeze()
}

/// Decodes an ack frame payload. `None` on malformed input.
#[must_use]
pub fn decode_ack_payload(mut raw: Bytes) -> Option<(u64, Vec<u64>)> {
    if raw.len() < 12 {
        return None;
    }
    let cum = raw.get_u64();
    let count = raw.get_u32() as usize;
    if count > MAX_NACKS || raw.len() != 8 * count {
        return None;
    }
    let nacks = (0..count).map(|_| raw.get_u64()).collect();
    Some((cum, nacks))
}

/// How many broadcast ids one summary frame carries at most.
pub const MAX_SUMMARY_IDS: usize = 64;

/// Summary payload mode byte: advertisement of recently-seen ids.
const SUMMARY_ADVERTISE: u8 = 0x00;
/// Summary payload mode byte: pull request for missing ids.
const SUMMARY_PULL: u8 = 0x01;

/// Encodes an anti-entropy summary payload. `pull = false` advertises
/// recently-seen broadcast ids; `pull = true` requests the listed ids.
#[must_use]
pub fn encode_summary_payload(pull: bool, ids: &[u64]) -> Bytes {
    let ids = &ids[..ids.len().min(MAX_SUMMARY_IDS)];
    let mut buf = BytesMut::with_capacity(1 + 4 + 8 * ids.len());
    buf.put_u8(if pull {
        SUMMARY_PULL
    } else {
        SUMMARY_ADVERTISE
    });
    buf.put_u32(ids.len() as u32);
    for &id in ids {
        buf.put_u64(id);
    }
    buf.freeze()
}

/// Decodes an anti-entropy summary payload into `(pull, ids)`. `None` on
/// malformed input or unknown mode bytes.
#[must_use]
pub fn decode_summary_payload(mut raw: Bytes) -> Option<(bool, Vec<u64>)> {
    if raw.len() < 5 {
        return None;
    }
    let pull = match raw.get_u8() {
        SUMMARY_ADVERTISE => false,
        SUMMARY_PULL => true,
        _ => return None,
    };
    let count = raw.get_u32() as usize;
    if count > MAX_SUMMARY_IDS || raw.len() != 8 * count {
        return None;
    }
    let ids = (0..count).map(|_| raw.get_u64()).collect();
    Some((pull, ids))
}

/// A broadcast the [`ReliableFlooder`] hosting its origin injects at a
/// scheduled virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledBroadcast {
    /// Broadcast id to originate.
    pub id: u64,
    /// Originating node.
    pub origin: u32,
    /// Virtual origination time (µs).
    pub at_us: u64,
}

/// Timer tokens at or above this value are reliability ticks; below it
/// they index the broadcast schedule.
const TICK_TOKEN_BASE: u64 = 1 << 32;

/// Flooding over reliable links, as a simulator [`Process`]: the
/// protocol of [`crate::broadcast::FloodProcess`] with per-link
/// ack/retransmit underneath and a periodic anti-entropy pass on top —
/// the same layering the TCP runtime uses, so lossy chaos runs exercise
/// one protocol on both engines.
///
/// Reliability ticks are pre-armed for the whole horizon at start (a
/// chained-timer design would die silently the first time a tick landed
/// inside a fault-injected down window).
pub struct ReliableFlooder {
    cfg: ReliableConfig,
    schedule: Vec<ScheduledBroadcast>,
    horizon_us: u64,
    seen: SeenSet,
    /// Recently-seen data messages retained for pull serving, plus the
    /// insertion-ordered id window backing summaries and eviction.
    store: HashMap<u64, Message>,
    recent: VecDeque<u64>,
    tx: HashMap<u32, LinkSender>,
    rx: HashMap<u32, LinkReceiver>,
}

impl ReliableFlooder {
    /// A flooder that originates its share of `schedule` (every node hosts
    /// the full schedule and arms timers for its own entries) and runs
    /// reliability ticks until `horizon_us`.
    #[must_use]
    pub fn new(cfg: ReliableConfig, schedule: Vec<ScheduledBroadcast>, horizon_us: u64) -> Self {
        ReliableFlooder {
            cfg,
            schedule,
            horizon_us,
            seen: SeenSet::default(),
            store: HashMap::new(),
            recent: VecDeque::new(),
            tx: HashMap::new(),
            rx: HashMap::new(),
        }
    }

    fn remember(&mut self, msg: &Message) {
        if self.recent.len() >= self.cfg.store_cap {
            if let Some(old) = self.recent.pop_front() {
                self.store.remove(&old);
            }
        }
        self.recent.push_back(msg.broadcast_id);
        let mut kept = msg.clone();
        kept.link_seq = None;
        self.store.insert(msg.broadcast_id, kept);
    }

    fn reliable_send(&mut self, ctx: &mut Context<'_>, to: NodeId, msg: Message) {
        let sender = self.tx.entry(to.index() as u32).or_default();
        if let Some(stamped) = sender.send(msg, &self.cfg, ctx.now()) {
            ctx.send(to, stamped);
        }
    }

    fn flood(&mut self, ctx: &mut Context<'_>, msg: &Message, except: Option<NodeId>) {
        for &w in &ctx.neighbors().to_vec() {
            if Some(w) != except {
                self.reliable_send(ctx, w, msg.clone());
            }
        }
    }

    fn send_ack(&mut self, ctx: &mut Context<'_>, to: NodeId) {
        let Some(rx) = self.rx.get_mut(&(to.index() as u32)) else {
            return;
        };
        if !rx.dirty() {
            return;
        }
        let (cum, nacks) = rx.ack_payload();
        let ack = Message::new(
            ACK_TAG,
            ctx.id().index() as u32,
            encode_ack_payload(cum, &nacks),
        );
        ctx.send(to, ack);
    }

    fn on_tick(&mut self, tick: u64, ctx: &mut Context<'_>) {
        let now = ctx.now();
        for &w in &ctx.neighbors().to_vec() {
            let peer = w.index() as u32;
            if let Some(tx) = self.tx.get_mut(&peer) {
                for frame in tx.sweep(&self.cfg, now) {
                    ctx.send(w, frame);
                }
            }
            self.send_ack(ctx, w);
            if tick.is_multiple_of(self.cfg.summary_every) && !self.recent.is_empty() {
                let ids: Vec<u64> = self
                    .recent
                    .iter()
                    .rev()
                    .take(MAX_SUMMARY_IDS)
                    .copied()
                    .collect();
                let summary = Message::new(
                    SUMMARY_TAG,
                    ctx.id().index() as u32,
                    encode_summary_payload(false, &ids),
                );
                ctx.send(w, summary);
            }
        }
    }
}

impl Process for ReliableFlooder {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (idx, b) in self.schedule.iter().enumerate() {
            if b.origin as usize == ctx.id().index() {
                ctx.set_timer(b.at_us, idx as u64);
            }
        }
        let mut tick = 1;
        while tick * self.cfg.tick_us <= self.horizon_us {
            ctx.set_timer(tick * self.cfg.tick_us, TICK_TOKEN_BASE + tick);
            tick += 1;
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token >= TICK_TOKEN_BASE {
            self.on_tick(token - TICK_TOKEN_BASE, ctx);
            return;
        }
        let b = self.schedule[token as usize];
        if !self.seen.insert(b.id) {
            return;
        }
        let msg = Message::new(b.id, ctx.id().index() as u32, Bytes::new());
        ctx.deliver(msg.clone());
        self.remember(&msg);
        self.flood(ctx, &msg, None);
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        let peer = from.index() as u32;
        if msg.broadcast_id == ACK_TAG {
            if let Some((cum, nacks)) = decode_ack_payload(msg.payload) {
                if let Some(tx) = self.tx.get_mut(&peer) {
                    for frame in tx.on_ack(cum, &nacks, &self.cfg, ctx.now()) {
                        ctx.send(from, frame);
                    }
                }
            }
            return;
        }
        if msg.broadcast_id == SUMMARY_TAG {
            match decode_summary_payload(msg.payload) {
                Some((false, ids)) => {
                    let missing: Vec<u64> = ids
                        .into_iter()
                        .filter(|id| !self.seen.contains(*id))
                        .collect();
                    if !missing.is_empty() {
                        let pull = Message::new(
                            SUMMARY_TAG,
                            ctx.id().index() as u32,
                            encode_summary_payload(true, &missing),
                        );
                        ctx.send(from, pull);
                    }
                }
                Some((true, ids)) => {
                    for id in ids {
                        // Serve the stored copy as-is: repair traffic is
                        // not part of the dissemination tree, so it does
                        // not advance the hop count.
                        if let Some(kept) = self.store.get(&id).cloned() {
                            self.reliable_send(ctx, from, kept);
                        }
                    }
                }
                None => {}
            }
            return;
        }
        // Data plane: link-level dedup first, then flooding dedup.
        if let Some(seq) = msg.link_seq {
            if !self.rx.entry(peer).or_default().on_frame(seq) {
                return;
            }
        }
        if !self.seen.insert(msg.broadcast_id) {
            return;
        }
        ctx.deliver(msg.clone());
        self.remember(&msg);
        let fwd = msg.forwarded();
        self.flood(ctx, &fwd, Some(from));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use lhg_graph::Graph;

    use crate::fault::{FaultInjector, LinkFaults};
    use crate::sim::{LinkModel, Simulation};

    fn msg(id: u64) -> Message {
        Message::new(id, 0, Bytes::from_static(b"m"))
    }

    fn cfg() -> ReliableConfig {
        ReliableConfig {
            window: 4,
            rto_us: 100,
            max_retries: 3,
            queue_cap: 8,
            ..ReliableConfig::default()
        }
    }

    #[test]
    fn sender_stamps_consecutive_seqs() {
        let mut tx = LinkSender::new();
        let a = tx.send(msg(1), &cfg(), 0).unwrap();
        let b = tx.send(msg(2), &cfg(), 0).unwrap();
        assert_eq!(a.link_seq, Some(1));
        assert_eq!(b.link_seq, Some(2));
        assert_eq!(tx.in_flight(), 2);
    }

    #[test]
    fn window_full_queues_and_ack_drains() {
        let c = cfg();
        let mut tx = LinkSender::new();
        for i in 0..4 {
            assert!(tx.send(msg(i), &c, 0).is_some());
        }
        assert!(tx.send(msg(99), &c, 0).is_none(), "window full: queued");
        assert_eq!(tx.queued(), 1);
        // Acking the first two frames opens the window; the queued frame
        // surfaces with the next sequence number.
        let out = tx.on_ack(2, &[], &c, 10);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].link_seq, Some(5));
        assert_eq!(out[0].broadcast_id, 99);
        assert_eq!(tx.queued(), 0);
        assert_eq!(tx.in_flight(), 3);
    }

    #[test]
    fn nacks_retransmit_immediately() {
        let c = cfg();
        let mut tx = LinkSender::new();
        for i in 0..3 {
            tx.send(msg(i), &c, 0);
        }
        // Peer received 1 and 3: cum=1, hole at 2.
        let out = tx.on_ack(1, &[2], &c, 10);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].link_seq, Some(2));
        assert_eq!(tx.in_flight(), 2, "seqs 2 and 3 still await acks");
    }

    #[test]
    fn sweep_retransmits_after_rto_then_gives_up() {
        let c = cfg();
        let mut tx = LinkSender::new();
        tx.send(msg(7), &c, 0);
        assert!(tx.sweep(&c, 50).is_empty(), "before rto: nothing due");
        for round in 1..=3u64 {
            let out = tx.sweep(&c, round * 100);
            assert_eq!(out.len(), 1, "round {round} retransmits");
        }
        // Fourth expiry exceeds max_retries: the frame is abandoned.
        assert!(tx.sweep(&c, 400).is_empty());
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.given_up(), 1);
    }

    #[test]
    fn take_undelivered_returns_unacked_and_queued_unstamped() {
        let c = cfg();
        let mut tx = LinkSender::new();
        for i in 0..5 {
            tx.send(msg(i), &c, 0);
        }
        tx.on_ack(1, &[], &c, 0);
        let pending = tx.take_undelivered();
        // seq 1 (msg 0) was acked; seq 5 surfaced from the queue on ack.
        let ids: Vec<u64> = pending.iter().map(|m| m.broadcast_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert!(pending.iter().all(|m| m.link_seq.is_none()));
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn receiver_tracks_cumulative_and_out_of_order() {
        let mut rx = LinkReceiver::new();
        assert!(rx.on_frame(1));
        assert!(rx.on_frame(3), "out of order is fresh");
        assert!(!rx.on_frame(3), "link-level duplicate");
        assert!(!rx.on_frame(1), "below cum is a duplicate");
        assert_eq!(rx.cum(), 1);
        assert!(rx.on_frame(2), "hole fills; cum jumps over 3");
        assert_eq!(rx.cum(), 3);
    }

    #[test]
    fn ack_payload_names_holes() {
        let mut rx = LinkReceiver::new();
        rx.on_frame(1);
        rx.on_frame(4);
        rx.on_frame(6);
        let (cum, nacks) = rx.ack_payload();
        assert_eq!(cum, 1);
        assert_eq!(nacks, vec![2, 3, 5]);
        assert!(!rx.dirty(), "ack emission clears the dirty flag");
    }

    #[test]
    fn duplicate_still_marks_dirty() {
        let mut rx = LinkReceiver::new();
        rx.on_frame(1);
        rx.ack_payload();
        assert!(!rx.on_frame(1), "retransmitted copy");
        assert!(rx.dirty(), "a duplicate means our ack was lost: re-ack");
    }

    #[test]
    fn ack_payload_round_trips() {
        let nacks = vec![3, 4, 9];
        let raw = encode_ack_payload(17, &nacks);
        assert_eq!(decode_ack_payload(raw), Some((17, nacks)));
        assert_eq!(decode_ack_payload(Bytes::from_static(b"xx")), None);
    }

    #[test]
    fn summary_payload_round_trips() {
        let ids = vec![1, 2, 0xFFFF_FFFF_FFFF];
        let raw = encode_summary_payload(false, &ids);
        assert_eq!(decode_summary_payload(raw), Some((false, ids.clone())));
        let raw = encode_summary_payload(true, &ids);
        assert_eq!(decode_summary_payload(raw), Some((true, ids)));
        assert_eq!(
            decode_summary_payload(Bytes::from_static(b"\x07\x00\x00\x00\x00")),
            None,
            "unknown mode byte"
        );
    }

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn lossless_latency_matches_best_effort_flooding() {
        // Acceptance bound for the reliable layer: ≤5% added latency on
        // clean links. Under zero jitter the comparison is exact — both
        // flooders forward the instant a fresh frame arrives, and acks,
        // sweeps, and summaries all ride separate frames that never delay
        // the data path. Any regression that puts reliability bookkeeping
        // in front of forwarding shows up here as a hard inequality.
        use crate::broadcast::FloodProcess;

        let n = 10;
        let g = cycle(n);
        let link = LinkModel {
            base_latency_us: 1_000,
            jitter_us: 0,
        };
        let horizon = 1_000_000;

        let mut base_sim = Simulation::new(&g, link, 7);
        let base_procs: Vec<Box<dyn Process>> = (0..n)
            .map(|v| -> Box<dyn Process> {
                if v == 0 {
                    Box::new(FloodProcess::origin(0x1000, Bytes::from_static(b"m")))
                } else {
                    Box::new(FloodProcess::relay())
                }
            })
            .collect();
        let baseline = base_sim.run(base_procs, horizon).first_delivery_times(n);

        let mut rel_sim = Simulation::new(&g, link, 7);
        let schedule = vec![ScheduledBroadcast {
            id: 0x1000,
            origin: 0,
            at_us: 0,
        }];
        let rel_procs: Vec<Box<dyn Process>> = (0..n)
            .map(|_| {
                Box::new(ReliableFlooder::new(
                    ReliableConfig::default(),
                    schedule.clone(),
                    horizon,
                )) as Box<dyn Process>
            })
            .collect();
        let reliable = rel_sim.run(rel_procs, horizon).first_delivery_times(n);

        for v in 1..n {
            let b = baseline[v].expect("baseline delivers everywhere");
            let r = reliable[v].expect("reliable delivers everywhere");
            assert_eq!(
                r, b,
                "node {v}: reliable layer added latency on a clean link"
            );
        }
    }

    #[test]
    fn reliable_flood_survives_heavy_loss() {
        // 30% drop on every link: a best-effort flood on a cycle would
        // almost surely miss someone; ack/retransmit must not.
        let n = 8;
        let g = cycle(n);
        let mut inj = FaultInjector::new(42);
        inj.set_default_rates(LinkFaults {
            drop: 0.3,
            duplicate: 0.1,
            ..LinkFaults::default()
        });
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 1_000,
                jitter_us: 200,
            },
            42,
        );
        sim.with_faults(Arc::new(inj));
        let horizon = 1_000_000;
        let schedule = vec![ScheduledBroadcast {
            id: 0x1000,
            origin: 0,
            at_us: 10_000,
        }];
        let processes: Vec<Box<dyn Process>> = (0..n)
            .map(|_| {
                Box::new(ReliableFlooder::new(
                    ReliableConfig::default(),
                    schedule.clone(),
                    horizon,
                )) as Box<dyn Process>
            })
            .collect();
        let report = sim.run(processes, horizon);
        let first = report.first_delivery_times(n);
        for (v, t) in first.iter().enumerate() {
            assert!(t.is_some(), "node {v} never delivered under loss");
        }
        assert_eq!(
            report.deliveries.len(),
            n,
            "exactly-once at every node despite retransmits and duplicates"
        );
    }
}
