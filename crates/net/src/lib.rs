//! # lhg-net
//!
//! Discrete-event message-passing substrate and reliable broadcast over LHG
//! overlays — the "distributed system" side of the reproduction.
//!
//! The flooding simulator in `lhg-flood` abstracts time into lockstep
//! rounds; this crate models the asynchronous reality the LHG paper targets:
//! processes on overlay nodes, links with latency and jitter, fail-stop
//! crashes at arbitrary times, and a flooding reliable-broadcast protocol
//! running on top.
//!
//! * [`message`] — the wire format ([`message::Message`], encoded over
//!   [`bytes::Bytes`]);
//! * [`codec`] — length-prefixed framing of messages over byte streams,
//!   shared by the threaded runner and the `lhg-runtime` TCP runtime;
//! * [`sim`] — the deterministic discrete-event simulator
//!   ([`sim::Simulation`], the [`sim::Process`] trait);
//! * [`broadcast`] — flooding reliable broadcast as a process
//!   ([`broadcast::FloodProcess`], [`broadcast::run_overlay_broadcast`]);
//! * [`reliable`] — per-link reliability (sequence numbers, cumulative
//!   ack + selective NACK, retransmit-on-timeout, backpressure) and
//!   anti-entropy summaries, so flooding's delivery guarantee survives
//!   lossy links ([`reliable::LinkSender`], [`reliable::ReliableFlooder`]);
//! * [`seen`] — capacity-capped dedup of seen broadcast ids
//!   ([`seen::SeenSet`]), bounding flooding state on long-lived nodes;
//! * [`threaded`] — the same protocol on real OS threads with crossbeam
//!   channels, demonstrating the logic outside the simulator.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use lhg_core::ktree::build_ktree;
//! use lhg_graph::NodeId;
//! use lhg_net::broadcast::run_overlay_broadcast;
//! use lhg_net::sim::LinkModel;
//!
//! // Broadcast over a 3-connected LHG with 2 crashed processes.
//! let lhg = build_ktree(14, 3)?;
//! let report = run_overlay_broadcast(
//!     lhg.graph(),
//!     NodeId(0),
//!     Bytes::from_static(b"payload"),
//!     LinkModel::default(),
//!     &[(NodeId(3), 0), (NodeId(7), 0)],
//!     42,
//! );
//! assert!(report.all_correct_delivered());
//! # Ok::<(), lhg_core::LhgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod broadcast;
pub mod codec;
pub mod detector;
pub mod fault;
pub mod fifo;
pub mod message;
pub mod metrics;
pub mod reliable;
pub mod seen;
pub mod sim;
pub mod threaded;
pub mod wirecost;
