//! FIFO-ordered reliable broadcast over flooding.
//!
//! Flooding delivers every broadcast to every correct process, but network
//! jitter can reorder broadcasts from the same origin. This module layers
//! the classic holdback-queue construction on top of the flooding relay:
//! broadcast ids encode `(origin, sequence)`, and each process delivers an
//! origin's broadcasts strictly in sequence order, parking early arrivals.
//!
//! The ordering core ([`FifoOrder`]) is a pure data structure, unit-tested
//! in isolation; [`FifoProcess`] plugs it into the discrete-event
//! simulator.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use lhg_graph::NodeId;

use crate::message::Message;
use crate::seen::SeenSet;
use crate::sim::{Context, Process};

/// Packs an `(origin, seq)` pair into a broadcast id.
#[must_use]
pub fn fifo_id(origin: u32, seq: u32) -> u64 {
    (u64::from(origin) << 32) | u64::from(seq)
}

/// Unpacks a broadcast id into `(origin, seq)`.
#[must_use]
pub fn fifo_parts(id: u64) -> (u32, u32) {
    ((id >> 32) as u32, id as u32)
}

/// The holdback queue: delivers each origin's messages in sequence order.
#[derive(Debug, Default)]
pub struct FifoOrder {
    next: HashMap<u32, u32>,
    holdback: BTreeMap<(u32, u32), Message>,
}

impl FifoOrder {
    /// Creates an empty queue (every origin starts at sequence 0).
    #[must_use]
    pub fn new() -> Self {
        FifoOrder::default()
    }

    /// Accepts one (deduplicated) message; returns everything that became
    /// deliverable, in delivery order.
    pub fn accept(&mut self, msg: Message) -> Vec<Message> {
        let (origin, seq) = fifo_parts(msg.broadcast_id);
        self.holdback.insert((origin, seq), msg);
        let mut out = Vec::new();
        let next = self.next.entry(origin).or_insert(0);
        while let Some(m) = self.holdback.remove(&(origin, *next)) {
            out.push(m);
            *next += 1;
        }
        out
    }

    /// Messages parked waiting for earlier sequence numbers.
    #[must_use]
    pub fn held_back(&self) -> usize {
        self.holdback.len()
    }
}

/// Flooding relay with FIFO delivery.
pub struct FifoProcess {
    /// Broadcasts this process originates at time 0: (seq, payload).
    originate: Vec<(u32, Bytes)>,
    seen: SeenSet,
    order: FifoOrder,
}

impl FifoProcess {
    /// A process that only relays and delivers.
    #[must_use]
    pub fn relay() -> Self {
        FifoProcess {
            originate: Vec::new(),
            seen: SeenSet::default(),
            order: FifoOrder::new(),
        }
    }

    /// A process that originates `payloads` (sequences 0..len) at time 0.
    #[must_use]
    pub fn origin(payloads: Vec<Bytes>) -> Self {
        FifoProcess {
            originate: payloads
                .into_iter()
                .enumerate()
                .map(|(i, p)| (i as u32, p))
                .collect(),
            seen: SeenSet::default(),
            order: FifoOrder::new(),
        }
    }

    fn handle(&mut self, msg: Message, from: Option<NodeId>, ctx: &mut Context<'_>) {
        if !self.seen.insert(msg.broadcast_id) {
            return;
        }
        for deliverable in self.order.accept(msg.clone()) {
            ctx.deliver(deliverable);
        }
        let fwd = msg.forwarded();
        for &w in &ctx.neighbors().to_vec() {
            if Some(w) != from {
                ctx.send(w, fwd.clone());
            }
        }
    }
}

impl Process for FifoProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let outgoing = std::mem::take(&mut self.originate);
        let me = ctx.id().index() as u32;
        for (seq, payload) in outgoing {
            let msg = Message::new(fifo_id(me, seq), me, payload);
            self.handle(msg, None, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        self.handle(msg, Some(from), ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkModel, Simulation};
    use lhg_graph::Graph;

    fn msg(origin: u32, seq: u32) -> Message {
        Message::new(fifo_id(origin, seq), origin, Bytes::new())
    }

    #[test]
    fn id_round_trips() {
        assert_eq!(fifo_parts(fifo_id(7, 42)), (7, 42));
        assert_eq!(fifo_parts(fifo_id(u32::MAX, 0)), (u32::MAX, 0));
    }

    #[test]
    fn in_order_messages_flow_straight_through() {
        let mut q = FifoOrder::new();
        assert_eq!(q.accept(msg(1, 0)).len(), 1);
        assert_eq!(q.accept(msg(1, 1)).len(), 1);
        assert_eq!(q.held_back(), 0);
    }

    #[test]
    fn early_arrival_is_held_back_then_released() {
        let mut q = FifoOrder::new();
        assert!(q.accept(msg(1, 2)).is_empty());
        assert!(q.accept(msg(1, 1)).is_empty());
        assert_eq!(q.held_back(), 2);
        let released = q.accept(msg(1, 0));
        assert_eq!(released.len(), 3, "0, 1 and 2 in order");
        let seqs: Vec<u32> = released
            .iter()
            .map(|m| fifo_parts(m.broadcast_id).1)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(q.held_back(), 0);
    }

    #[test]
    fn origins_are_independent() {
        let mut q = FifoOrder::new();
        assert!(q.accept(msg(1, 1)).is_empty());
        assert_eq!(
            q.accept(msg(2, 0)).len(),
            1,
            "origin 2 unaffected by origin 1's gap"
        );
    }

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn simulated_fifo_broadcast_delivers_everything_in_order() {
        let n = 12;
        let payloads: Vec<Bytes> = (0..5).map(|i| Bytes::from(format!("m{i}"))).collect();
        let g = cycle(n);
        // Heavy jitter to force out-of-order arrivals.
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 100,
                jitter_us: 400,
            },
            13,
        );
        let processes: Vec<Box<dyn Process>> = (0..n)
            .map(|v| -> Box<dyn Process> {
                if v == 0 {
                    Box::new(FifoProcess::origin(payloads.clone()))
                } else {
                    Box::new(FifoProcess::relay())
                }
            })
            .collect();
        let report = sim.run(processes, u64::MAX);

        // Every node delivers all 5 messages...
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for d in &report.deliveries {
            per_node[d.node.index()].push(fifo_parts(d.broadcast_id).1);
        }
        for (v, seqs) in per_node.iter().enumerate() {
            assert_eq!(seqs.len(), 5, "node {v} delivered {seqs:?}");
            // ...in FIFO order (deliveries vector is time-ordered; ties are
            // emitted in release order by the holdback queue).
            assert_eq!(*seqs, vec![0, 1, 2, 3, 4], "node {v} order {seqs:?}");
        }
    }

    #[test]
    fn fifo_with_multiple_origins() {
        let n = 8;
        let g = cycle(n);
        let mut sim = Simulation::new(
            &g,
            LinkModel {
                base_latency_us: 100,
                jitter_us: 300,
            },
            7,
        );
        let processes: Vec<Box<dyn Process>> = (0..n)
            .map(|v| -> Box<dyn Process> {
                match v {
                    0 => Box::new(FifoProcess::origin(vec![
                        Bytes::from_static(b"a0"),
                        Bytes::from_static(b"a1"),
                    ])),
                    4 => Box::new(FifoProcess::origin(vec![
                        Bytes::from_static(b"b0"),
                        Bytes::from_static(b"b1"),
                    ])),
                    _ => Box::new(FifoProcess::relay()),
                }
            })
            .collect();
        let report = sim.run(processes, u64::MAX);
        let mut per_node_origin: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for d in &report.deliveries {
            per_node_origin[d.node.index()].push(fifo_parts(d.broadcast_id));
        }
        for (v, deliveries) in per_node_origin.iter().enumerate() {
            assert_eq!(deliveries.len(), 4, "node {v}: {deliveries:?}");
            // Per-origin subsequences must be in seq order.
            for origin in [0u32, 4] {
                let seqs: Vec<u32> = deliveries
                    .iter()
                    .filter(|(o, _)| *o == origin)
                    .map(|(_, s)| *s)
                    .collect();
                assert_eq!(seqs, vec![0, 1], "node {v} origin {origin}");
            }
        }
    }
}
